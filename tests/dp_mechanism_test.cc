#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "dp/amplification.h"
#include "dp/laplace_mechanism.h"

namespace prc::dp {
namespace {

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  const LaplaceMechanism mech(2.0, 0.5);
  EXPECT_DOUBLE_EQ(mech.scale(), 4.0);
  EXPECT_DOUBLE_EQ(mech.noise_variance(), 32.0);
}

TEST(LaplaceMechanismTest, RejectsBadParameters) {
  EXPECT_THROW(LaplaceMechanism(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LaplaceMechanism(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LaplaceMechanism(-1.0, 1.0), std::invalid_argument);
}

TEST(LaplaceMechanismTest, PerturbationIsCenteredOnValue) {
  const LaplaceMechanism mech(1.0, 1.0);
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(mech.perturb(100.0, rng));
  EXPECT_NEAR(stats.mean(), 100.0, 0.05);
  EXPECT_NEAR(stats.variance(), mech.noise_variance(), 0.1);
}

// The defining DP inequality, checked empirically: for neighboring counts
// differing by the sensitivity, the output densities must be within e^eps.
TEST(LaplaceMechanismTest, EmpiricalPrivacyRatioBound) {
  const double epsilon = 0.8;
  const double sensitivity = 1.0;
  const LaplaceMechanism mech(sensitivity, epsilon);
  Rng rng(11);
  Histogram on_d(90.0, 110.0, 40);   // outputs for gamma(D) = 100
  Histogram on_d2(90.0, 110.0, 40);  // outputs for gamma(D') = 101
  const int trials = 400000;
  for (int i = 0; i < trials; ++i) {
    on_d.add(mech.perturb(100.0, rng));
    on_d2.add(mech.perturb(101.0, rng));
  }
  const double bound = std::exp(epsilon);
  for (std::size_t b = 0; b < on_d.bins(); ++b) {
    // Only compare well-populated bins; sparse tails are sampling noise.
    if (on_d.count(b) < 500 || on_d2.count(b) < 500) continue;
    const double ratio = on_d.density(b) / on_d2.density(b);
    EXPECT_LE(ratio, bound * 1.15) << "bin " << b;
    EXPECT_GE(ratio, 1.0 / (bound * 1.15)) << "bin " << b;
  }
}

// A violation detector: with a *smaller* claimed epsilon the same mechanism
// must fail the ratio bound somewhere, proving the check has power.
TEST(LaplaceMechanismTest, RatioCheckDetectsBudgetViolations) {
  const LaplaceMechanism mech(1.0, 2.0);  // actual budget 2.0
  Rng rng(13);
  Histogram on_d(95.0, 107.0, 24);
  Histogram on_d2(95.0, 107.0, 24);
  const int trials = 400000;
  // Neighbors 3 apart: effective shift 3 * eps worth of density ratio.
  for (int i = 0; i < trials; ++i) {
    on_d.add(mech.perturb(100.0, rng));
    on_d2.add(mech.perturb(103.0, rng));
  }
  const double claimed_bound = std::exp(0.5);  // far too small
  bool violated = false;
  for (std::size_t b = 0; b < on_d.bins(); ++b) {
    if (on_d.count(b) < 500 || on_d2.count(b) < 500) continue;
    const double ratio = on_d.density(b) / on_d2.density(b);
    if (ratio > claimed_bound || ratio < 1.0 / claimed_bound) violated = true;
  }
  EXPECT_TRUE(violated);
}

TEST(LaplaceMechanismTest, CentralProbabilityFeedsOptimizerConstraint) {
  const LaplaceMechanism mech(0.5, 2.0);  // scale 0.25
  // Pr[|Lap(b)| <= t] = 1 - exp(-t/b).
  EXPECT_NEAR(mech.central_probability(0.25), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(mech.central_quantile(0.5), 0.25 * std::log(2.0), 1e-12);
}

TEST(SensitivityPolicyTest, ExpectedIsInverseP) {
  EXPECT_DOUBLE_EQ(sensitivity_for(SensitivityPolicy::kExpected, 0.25, 0),
                   4.0);
  EXPECT_THROW(sensitivity_for(SensitivityPolicy::kExpected, 0.0, 0),
               std::invalid_argument);
}

TEST(SensitivityPolicyTest, WorstCaseIsMaxNodeCount) {
  EXPECT_DOUBLE_EQ(sensitivity_for(SensitivityPolicy::kWorstCase, 0.5, 1200),
                   1200.0);
  EXPECT_THROW(sensitivity_for(SensitivityPolicy::kWorstCase, 0.5, 0),
               std::invalid_argument);
}

// --- amplification by sampling (Lemma 3.4) ---------------------------------

TEST(AmplificationTest, ClosedFormValues) {
  EXPECT_NEAR(amplified_epsilon(1.0, 1.0), 1.0, 1e-12);  // no sampling
  EXPECT_NEAR(amplified_epsilon(1.0, 0.0), 0.0, 1e-12);  // nothing sampled
  EXPECT_NEAR(amplified_epsilon(0.0, 0.5), 0.0, 1e-12);  // no noise budget
  EXPECT_NEAR(amplified_epsilon(2.0, 0.3),
              std::log(1.0 - 0.3 + 0.3 * std::exp(2.0)), 1e-12);
}

TEST(AmplificationTest, AlwaysAmplifiesForPartialSampling) {
  for (double eps : {0.1, 0.5, 1.0, 4.0}) {
    for (double p : {0.05, 0.3, 0.7}) {
      EXPECT_LT(amplified_epsilon(eps, p), eps)
          << "eps=" << eps << " p=" << p;
    }
  }
}

TEST(AmplificationTest, MonotoneInBothArguments) {
  EXPECT_LT(amplified_epsilon(1.0, 0.2), amplified_epsilon(1.0, 0.4));
  EXPECT_LT(amplified_epsilon(0.5, 0.3), amplified_epsilon(1.5, 0.3));
}

TEST(AmplificationTest, SmallPApproximation) {
  // For small p and moderate eps, eps' ~ p (e^eps - 1) up to the second-
  // order term x^2/2 of ln(1+x).
  const double eps = 1.0, p = 1e-4;
  const double x = p * std::expm1(eps);
  EXPECT_NEAR(amplified_epsilon(eps, p), x, x * x);
}

TEST(AmplificationTest, InverseRoundTrips) {
  for (double eps : {0.2, 1.0, 3.0}) {
    for (double p : {0.1, 0.5, 0.9}) {
      const double amp = amplified_epsilon(eps, p);
      EXPECT_NEAR(base_epsilon_for_amplified(amp, p), eps, 1e-9);
    }
  }
  EXPECT_THROW(base_epsilon_for_amplified(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(base_epsilon_for_amplified(-1.0, 0.5), std::invalid_argument);
}

TEST(AmplificationTest, RejectsBadArguments) {
  EXPECT_THROW(amplified_epsilon(-0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(amplified_epsilon(1.0, 1.5), std::invalid_argument);
}

TEST(CompositionTest, SequentialBudgetsAdd) {
  const std::vector<prc::EffectiveEpsilon> budgets = {0.1, 0.2, 0.3};
  EXPECT_NEAR(compose_sequential(budgets), 0.6, 1e-12);
  EXPECT_EQ(compose_sequential({}), 0.0);
  const std::vector<prc::EffectiveEpsilon> bad = {0.1, -0.2};
  EXPECT_THROW(compose_sequential(bad), std::invalid_argument);
}

// Monte-Carlo check of Lemma 3.4 itself: sample-then-perturb on neighboring
// datasets must satisfy the amplified budget on output densities.
TEST(AmplificationTest, EmpiricalSampledMechanismMeetsAmplifiedBudget) {
  const double epsilon = 1.5;
  const double p = 0.2;
  const double eps_amp = amplified_epsilon(epsilon, p);

  // Query: count of items equal to 1.  D has 40 ones; D' has 41.
  const int base_ones = 40;
  const LaplaceMechanism mech(1.0, epsilon);
  Rng rng(17);
  Histogram out_d(-5.0, 20.0, 25);
  Histogram out_d2(-5.0, 20.0, 25);
  const int trials = 300000;
  for (int i = 0; i < trials; ++i) {
    int sampled_count = 0;
    for (int j = 0; j < base_ones; ++j) {
      if (rng.bernoulli(p)) ++sampled_count;
    }
    out_d.add(mech.perturb(sampled_count, rng));
    // Neighbor has one extra item, also subsampled.
    int extra = rng.bernoulli(p) ? 1 : 0;
    int sampled_count2 = 0;
    for (int j = 0; j < base_ones; ++j) {
      if (rng.bernoulli(p)) ++sampled_count2;
    }
    out_d2.add(mech.perturb(sampled_count2 + extra, rng));
  }
  const double bound = std::exp(eps_amp);
  for (std::size_t b = 0; b < out_d.bins(); ++b) {
    if (out_d.count(b) < 2000 || out_d2.count(b) < 2000) continue;
    const double ratio = out_d.density(b) / out_d2.density(b);
    EXPECT_LE(ratio, bound * 1.1) << "bin " << b;
    EXPECT_GE(ratio, 1.0 / (bound * 1.1)) << "bin " << b;
  }
}

}  // namespace
}  // namespace prc::dp
