// Span tracer: nesting (parent/child/depth), completion ordering, ring
// eviction, enable/disable, and the flamegraph text dump.

#include "common/trace.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace prc::trace {
namespace {

// The tracer under test is the process-wide singleton, so every test
// restores a clean slate first.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(true);
    Tracer::instance().set_capacity(4096);
    Tracer::instance().clear();
  }
};

const SpanRecord* find_span(const std::vector<SpanRecord>& spans,
                            const std::string& name) {
  const auto it = std::find_if(
      spans.begin(), spans.end(),
      [&](const SpanRecord& span) { return span.name == name; });
  return it == spans.end() ? nullptr : &*it;
}

TEST_F(TraceTest, RecordsNestedSpansWithParentLinks) {
  {
    PRC_TRACE_SPAN("outer");
    {
      PRC_TRACE_SPAN("middle");
      { PRC_TRACE_SPAN("inner"); }
    }
  }
  const auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 3u);
  const auto* outer = find_span(spans, "outer");
  const auto* middle = find_span(spans, "middle");
  const auto* inner = find_span(spans, "inner");
  ASSERT_TRUE(outer && middle && inner);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(middle->parent_id, outer->id);
  EXPECT_EQ(middle->depth, 1u);
  EXPECT_EQ(inner->parent_id, middle->id);
  EXPECT_EQ(inner->depth, 2u);
  // Children complete before their parents (RAII unwinding order).
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[2].name, "outer");
  // A child starts no earlier and ends no later than its parent.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->duration_ns,
            outer->start_ns + outer->duration_ns);
}

TEST_F(TraceTest, SiblingsShareTheParent) {
  {
    PRC_TRACE_SPAN("parent");
    { PRC_TRACE_SPAN("first"); }
    { PRC_TRACE_SPAN("second"); }
  }
  const auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 3u);
  const auto* parent = find_span(spans, "parent");
  const auto* first = find_span(spans, "first");
  const auto* second = find_span(spans, "second");
  ASSERT_TRUE(parent && first && second);
  EXPECT_EQ(first->parent_id, parent->id);
  EXPECT_EQ(second->parent_id, parent->id);
  EXPECT_EQ(first->depth, 1u);
  EXPECT_EQ(second->depth, 1u);
  EXPECT_LE(first->start_ns, second->start_ns);
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::instance().set_enabled(false);
  { PRC_TRACE_SPAN("invisible"); }
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
  Tracer::instance().set_enabled(true);
}

TEST_F(TraceTest, RingEvictsOldestAndCountsDrops) {
  Tracer::instance().set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    PRC_TRACE_SPAN("span");
  }
  const auto spans = Tracer::instance().snapshot();
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(Tracer::instance().dropped(), 6u);
  // The survivors are the most recent ids.
  std::uint64_t max_id = 0;
  for (const auto& span : spans) max_id = std::max(max_id, span.id);
  for (const auto& span : spans) EXPECT_GT(span.id + 4, max_id);
}

TEST_F(TraceTest, FlameTextIndentsByDepth) {
  {
    PRC_TRACE_SPAN("market.sell");
    {
      PRC_TRACE_SPAN("dp.answer");
      { PRC_TRACE_SPAN("iot.round"); }
    }
  }
  const std::string text = Tracer::instance().flame_text();
  EXPECT_NE(text.find("# trace (3 spans)"), std::string::npos);
  EXPECT_NE(text.find("\nmarket.sell"), std::string::npos);
  EXPECT_NE(text.find("\n  dp.answer"), std::string::npos);
  EXPECT_NE(text.find("\n    iot.round"), std::string::npos);
  // Start order: the parent line precedes its children.
  EXPECT_LT(text.find("market.sell"), text.find("dp.answer"));
  EXPECT_LT(text.find("dp.answer"), text.find("iot.round"));
}

TEST_F(TraceTest, ThreadsNestIndependently) {
  // Parent/child links are thread-local: spans on two threads must both be
  // roots even when their lifetimes overlap.  Run under TSan in CI.
  std::thread a([] {
    PRC_TRACE_SPAN("thread.a");
    { PRC_TRACE_SPAN("thread.a.child"); }
  });
  std::thread b([] {
    PRC_TRACE_SPAN("thread.b");
    { PRC_TRACE_SPAN("thread.b.child"); }
  });
  a.join();
  b.join();
  const auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 4u);
  const auto* root_a = find_span(spans, "thread.a");
  const auto* root_b = find_span(spans, "thread.b");
  const auto* child_a = find_span(spans, "thread.a.child");
  ASSERT_TRUE(root_a && root_b && child_a);
  EXPECT_EQ(root_a->depth, 0u);
  EXPECT_EQ(root_b->depth, 0u);
  EXPECT_EQ(child_a->parent_id, root_a->id);
}

TEST_F(TraceTest, ClearResetsSpansAndDropCount) {
  Tracer::instance().set_capacity(1);
  { PRC_TRACE_SPAN("one"); }
  { PRC_TRACE_SPAN("two"); }
  EXPECT_EQ(Tracer::instance().dropped(), 1u);
  Tracer::instance().clear();
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
  EXPECT_EQ(Tracer::instance().dropped(), 0u);
}

}  // namespace
}  // namespace prc::trace
