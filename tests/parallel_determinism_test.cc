// Determinism regression suite for the parallel execution layer.
//
// The contract under test (DESIGN.md "Threading model"): the same seed
// produces bit-identical estimates, round reports, ledger contents and
// telemetry counters no matter how many threads execute the run.  Every
// comparison here is exact (EXPECT_EQ on doubles, deliberately) — a
// tolerance would hide exactly the reassociation/reordering bugs this
// suite exists to catch.
//
// The final test flips SimulationConfig::concurrent_consumers on and
// hammers the broker/counter/ledger locks from the pool; it asserts only
// conserved quantities, and it is the test the TSan CI job leans on.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "data/partition.h"
#include "dp/private_counting.h"
#include "iot/network.h"
#include "iot/tree_network.h"
#include "market/broker.h"
#include "market/simulation.h"
#include "pricing/pricing.h"
#include "query/range_query.h"

namespace prc {
namespace {

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t count)
      : previous_(parallel::thread_count()) {
    parallel::set_thread_count(count);
  }
  ~ThreadCountGuard() { parallel::set_thread_count(previous_); }

 private:
  std::size_t previous_;
};

std::vector<std::vector<double>> make_node_data(std::size_t nodes,
                                                std::size_t total) {
  std::vector<double> values(total);
  Rng value_rng(12345);
  for (auto& v : values) v = value_rng.uniform(0.0, 200.0);
  Rng rng(3);
  return data::partition_values(values, nodes,
                                data::PartitionStrategy::kRoundRobin, rng);
}

std::vector<query::RangeQuery> make_ranges(std::size_t count) {
  std::vector<query::RangeQuery> ranges;
  Rng rng(7);
  for (std::size_t i = 0; i < count; ++i) {
    const double lo = rng.uniform(0.0, 150.0);
    ranges.push_back({lo, lo + rng.uniform(5.0, 40.0)});
  }
  return ranges;
}

iot::NetworkConfig lossy_flat_config() {
  iot::NetworkConfig config;
  config.seed = 11;
  config.frame_loss_probability = 0.25;
  config.max_attempts = 3;
  config.faults.good_to_bad = 0.1;
  config.faults.loss_bad = 0.6;
  config.faults.duplication_probability = 0.05;
  config.faults.crash_probability = 0.05;
  config.faults.seed = 42;
  return config;
}

void expect_same_stats(const iot::CommunicationStats& a,
                       const iot::CommunicationStats& b) {
  EXPECT_EQ(a.downlink_messages, b.downlink_messages);
  EXPECT_EQ(a.downlink_bytes, b.downlink_bytes);
  EXPECT_EQ(a.uplink_messages, b.uplink_messages);
  EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.corrupted_frames, b.corrupted_frames);
  EXPECT_EQ(a.samples_transferred, b.samples_transferred);
  EXPECT_EQ(a.piggybacked_reports, b.piggybacked_reports);
  EXPECT_EQ(a.frames_attempted, b.frames_attempted);
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.dropped_frames, b.dropped_frames);
  EXPECT_EQ(a.duplicated_frames, b.duplicated_frames);
  EXPECT_EQ(a.backoff_slots, b.backoff_slots);
}

void expect_same_report(const iot::RoundReport& a, const iot::RoundReport& b) {
  EXPECT_EQ(a.target_p, b.target_p);
  EXPECT_EQ(a.new_samples, b.new_samples);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i], b.outcomes[i]) << "node " << i;
  }
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.dropped_frames, b.dropped_frames);
  EXPECT_EQ(a.severed_reports, b.severed_reports);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.min_probability, b.min_probability);
}

TEST(ParallelDeterminismTest, FlatRoundBitIdenticalAcrossThreadCounts) {
  const auto ranges = make_ranges(16);
  iot::RoundReport reports[2];
  iot::CommunicationStats stats[2];
  std::vector<double> estimates[2];
  const std::size_t thread_counts[2] = {1, 8};
  for (int run = 0; run < 2; ++run) {
    ThreadCountGuard guard(thread_counts[run]);
    iot::FlatNetwork network(make_node_data(24, 6000), lossy_flat_config());
    network.ensure_sampling_probability(0.1);
    reports[run] = network.ensure_sampling_probability(0.3);
    stats[run] = network.stats();
    estimates[run] = network.rank_counting_estimate_batch(ranges);
  }
  expect_same_report(reports[0], reports[1]);
  expect_same_stats(stats[0], stats[1]);
  EXPECT_EQ(estimates[0], estimates[1]);  // bitwise, both rounds applied
}

TEST(ParallelDeterminismTest, TreeRoundBitIdenticalAcrossThreadCounts) {
  const auto ranges = make_ranges(16);
  iot::RoundReport reports[2];
  iot::CommunicationStats stats[2];
  std::vector<iot::TreeLevelStats> levels[2];
  std::vector<double> estimates[2];
  const std::size_t thread_counts[2] = {1, 8};
  for (int run = 0; run < 2; ++run) {
    ThreadCountGuard guard(thread_counts[run]);
    iot::TreeConfig config;
    config.seed = 19;
    config.fanout = 3;
    config.frame_loss_probability = 0.2;
    config.max_attempts = 4;
    iot::TreeNetwork network(make_node_data(40, 8000), config);
    reports[run] = network.ensure_sampling_probability(0.25);
    stats[run] = network.stats();
    levels[run] = network.level_stats();
    estimates[run] = network.rank_counting_estimate_batch(ranges);
  }
  expect_same_report(reports[0], reports[1]);
  expect_same_stats(stats[0], stats[1]);
  ASSERT_EQ(levels[0].size(), levels[1].size());
  for (std::size_t d = 0; d < levels[0].size(); ++d) {
    EXPECT_EQ(levels[0][d].links_crossed, levels[1][d].links_crossed);
    EXPECT_EQ(levels[0][d].bytes, levels[1][d].bytes);
  }
  EXPECT_EQ(estimates[0], estimates[1]);
}

// The acceptance shape: a 100-query batch must return exactly what 100
// independent single-query calls return, at any thread count (the batch
// runs queries on the pool with a nested chunk-grid node sum; both
// collapse to the same serial left-fold).
TEST(ParallelDeterminismTest, BatchEstimateMatchesSingleCallsBitwise) {
  iot::NetworkConfig config;
  config.seed = 5;
  iot::FlatNetwork network(make_node_data(24, 6000), config);
  network.ensure_sampling_probability(0.2);
  const auto ranges = make_ranges(100);
  std::vector<double> singles;
  for (const auto& range : ranges) {
    singles.push_back(network.rank_counting_estimate(range));
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadCountGuard guard(threads);
    const auto batch = network.rank_counting_estimate_batch(ranges);
    EXPECT_EQ(batch, singles) << "threads=" << threads;
  }
}

using CounterMap = std::map<std::string, std::uint64_t>;

CounterMap counter_map() {
  CounterMap map;
  for (const auto& [name, value] :
       telemetry::Telemetry::registry().snapshot().counters) {
    map[name] = value;
  }
  return map;
}

struct MarketRunResult {
  market::SimulationReport report;
  std::vector<market::Transaction> transactions;
  CounterMap counters;
};

MarketRunResult run_market(std::size_t threads, bool concurrent) {
  ThreadCountGuard guard(threads);
  telemetry::Telemetry::registry().reset();
  iot::NetworkConfig net_config;
  net_config.seed = 9;
  iot::FlatNetwork network(make_node_data(8, 20000), net_config);
  dp::PrivateRangeCounter counter(network);
  const pricing::VarianceModel model(20000, 8);
  market::DataBroker broker(
      counter,
      std::make_unique<pricing::InverseVariancePricing>(
          model, query::AccuracySpec{0.1, 0.5}, 100.0, 1.0),
      market::BrokerConfig{});
  market::SimulationConfig config;
  config.rounds = 12;
  config.honest_consumers = 4;
  config.attackers = 2;
  config.seed = 77;
  config.concurrent_consumers = concurrent;
  MarketRunResult result;
  result.report = market::MarketSimulation(
                      broker, model, make_ranges(6), config)
                      .run();
  result.transactions = broker.ledger().transactions_snapshot();
  EXPECT_LE(broker.ledger().conservation_discrepancy(), 1e-9);
  result.counters = counter_map();
  return result;
}

TEST(ParallelDeterminismTest, MarketRunBitIdenticalAcrossThreadCounts) {
  const auto serial = run_market(1, /*concurrent=*/false);
  const auto pooled = run_market(8, /*concurrent=*/false);

  EXPECT_EQ(serial.report.honest_purchases, pooled.report.honest_purchases);
  EXPECT_EQ(serial.report.attacker_queries, pooled.report.attacker_queries);
  EXPECT_EQ(serial.report.attacker_targets, pooled.report.attacker_targets);
  EXPECT_EQ(serial.report.profitable_attacks,
            pooled.report.profitable_attacks);
  EXPECT_EQ(serial.report.refused_sales, pooled.report.refused_sales);
  EXPECT_EQ(serial.report.revenue, pooled.report.revenue);
  EXPECT_EQ(serial.report.honest_spend, pooled.report.honest_spend);
  EXPECT_EQ(serial.report.attacker_spend, pooled.report.attacker_spend);
  EXPECT_EQ(serial.report.attacker_honest_value,
            pooled.report.attacker_honest_value);
  EXPECT_EQ(serial.report.max_honest_epsilon,
            pooled.report.max_honest_epsilon);
  EXPECT_EQ(serial.report.max_attacker_epsilon,
            pooled.report.max_attacker_epsilon);

  // The ledger is the market's audit trail: same sequence, same consumers,
  // same prices, same released budgets — in the same order.
  ASSERT_EQ(serial.transactions.size(), pooled.transactions.size());
  for (std::size_t i = 0; i < serial.transactions.size(); ++i) {
    const auto& a = serial.transactions[i];
    const auto& b = pooled.transactions[i];
    EXPECT_EQ(a.sequence, b.sequence);
    EXPECT_EQ(a.consumer_id, b.consumer_id);
    EXPECT_EQ(a.price, b.price);
    EXPECT_EQ(a.epsilon_amplified, b.epsilon_amplified);
    EXPECT_EQ(a.degraded, b.degraded);
  }

  // Telemetry counters (event counts across every layer the run touched)
  // must agree exactly; they are the cheap first diff when determinism
  // regresses.
  EXPECT_EQ(serial.counters, pooled.counters);
}

// The contention test the TSan job leans on: commit purchases concurrently
// against the mutexed broker/counter/ledger.  Interleaving is
// nondeterministic, so assert the conserved quantities only.
TEST(ParallelDeterminismTest, ConcurrentConsumersKeepLedgerConserved) {
  const auto result = run_market(8, /*concurrent=*/true);
  // Every sold query is ledgered exactly once.
  EXPECT_EQ(result.transactions.size(),
            result.report.honest_purchases + result.report.attacker_queries);
  // Money is conserved: the ledger's revenue equals what consumers spent.
  double ledger_revenue = 0.0;
  for (const auto& t : result.transactions) ledger_revenue += t.price;
  EXPECT_NEAR(
      ledger_revenue,
      result.report.honest_spend + result.report.attacker_spend,
      1e-6 * (1.0 + ledger_revenue));
  // No refusals with an uncapped budget — a refusal here would mean a sale
  // vanished in a race rather than by policy.
  EXPECT_EQ(result.report.refused_sales, 0u);
}

}  // namespace
}  // namespace prc
