// Edge-case and degenerate-input coverage for the estimators: duplicate
// values, single-element nodes, negative domains, k = 1, and the documented
// boundary-coincidence bias.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"
#include "estimator/basic_counting.h"
#include "estimator/rank_counting.h"
#include "sampling/local_sampler.h"

namespace prc::estimator {
namespace {

using sampling::RankSampleSet;

TEST(EstimatorEdgeCases, AllValuesIdentical) {
  // 100 copies of the same value: any range containing it counts all, any
  // other range counts none; the estimator must stay unbiased.
  std::vector<double> values(100, 7.0);
  const double p = 0.3;
  Rng rng(1);
  RunningStats containing, excluding;
  for (int t = 0; t < 20000; ++t) {
    sampling::LocalSampler sampler(values);
    sampler.raise_probability(p, rng);
    const auto sample = sampler.current_sample();
    containing.add(
        rank_counting_node_estimate(sample, 100, p, {6.5, 7.5}));
    excluding.add(
        rank_counting_node_estimate(sample, 100, p, {8.0, 9.0}));
  }
  EXPECT_NEAR(containing.mean(), 100.0,
              5.0 * std::sqrt(rank_counting_node_variance_bound(p) / 20000));
  EXPECT_NEAR(excluding.mean(), 0.0,
              5.0 * std::sqrt(rank_counting_node_variance_bound(p) / 20000));
}

TEST(EstimatorEdgeCases, SingleElementNode) {
  Rng rng(2);
  const double p = 0.5;
  RunningStats stats;
  for (int t = 0; t < 20000; ++t) {
    sampling::LocalSampler sampler({5.0});
    sampler.raise_probability(p, rng);
    stats.add(rank_counting_node_estimate(sampler.current_sample(), 1, p,
                                          {4.0, 6.0}));
  }
  // Truth = 1.  Sampled (prob 1/2): no pred (5>4? pred(4)=none since 5>4),
  // succ(6)=none -> case 4 -> n_i=1.  Unsampled: also case 4 -> 1.  Exact!
  EXPECT_DOUBLE_EQ(stats.mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(EstimatorEdgeCases, NegativeValueDomain) {
  std::vector<double> values;
  for (int i = -100; i < 0; ++i) values.push_back(static_cast<double>(i));
  const double p = 0.25;
  const query::RangeQuery range{-80.5, -20.5};
  Rng rng(3);
  RunningStats stats;
  for (int t = 0; t < 20000; ++t) {
    sampling::LocalSampler sampler(values);
    sampler.raise_probability(p, rng);
    stats.add(rank_counting_node_estimate(sampler.current_sample(),
                                          values.size(), p, range));
  }
  EXPECT_NEAR(stats.mean(), 60.0,
              5.0 * std::sqrt(rank_counting_node_variance_bound(p) / 20000));
}

TEST(EstimatorEdgeCases, PointQueryOnDistinctValues) {
  // Range [x, x] with x in the data: truth = 1.  This is the worst case for
  // the boundary-coincidence bias: when x itself is sampled it acts as its
  // own predecessor and the -2/p correction overshoots.  The bias is
  // bounded by ~1 (the paper's analysis assumes continuous values); we pin
  // that quantitatively so regressions surface.
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  const double p = 0.3;
  Rng rng(4);
  RunningStats stats;
  for (int t = 0; t < 40000; ++t) {
    sampling::LocalSampler sampler(values);
    sampler.raise_probability(p, rng);
    stats.add(rank_counting_node_estimate(sampler.current_sample(), 100, p,
                                          {50.0, 50.0}));
  }
  EXPECT_NEAR(stats.mean(), 1.0, 1.5);  // biased but bounded
}

TEST(EstimatorEdgeCases, RangeBetweenConsecutiveValuesIsUnbiasedZero) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  const double p = 0.3;
  Rng rng(5);
  RunningStats stats;
  for (int t = 0; t < 20000; ++t) {
    sampling::LocalSampler sampler(values);
    sampler.raise_probability(p, rng);
    stats.add(rank_counting_node_estimate(sampler.current_sample(), 100, p,
                                          {50.2, 50.8}));
  }
  EXPECT_NEAR(stats.mean(), 0.0,
              5.0 * std::sqrt(rank_counting_node_variance_bound(p) / 20000));
}

TEST(EstimatorEdgeCases, SingleNodeNetworkMatchesPerNodeEstimate) {
  const RankSampleSet set({{2.0, 2}, {5.0, 5}});
  const std::vector<NodeSampleView> views = {{&set, 10}};
  const query::RangeQuery range{1.5, 4.5};
  EXPECT_DOUBLE_EQ(rank_counting_estimate(views, 0.4, range),
                   rank_counting_node_estimate(set, 10, 0.4, range));
}

TEST(EstimatorEdgeCases, TinyProbabilityStillComputes) {
  const RankSampleSet set({{5.0, 5}});
  const double est =
      rank_counting_node_estimate(set, 1000, 1e-6, {1.0, 4.0});
  // succ(4) = 5 (rank 5): 5 - 1/p is hugely negative; must be finite and
  // follow the formula exactly.
  EXPECT_DOUBLE_EQ(est, 5.0 - 1e6);
}

TEST(EstimatorEdgeCases, BasicCountingDegenerateInputs) {
  const RankSampleSet empty;
  EXPECT_DOUBLE_EQ(basic_counting_node_estimate(empty, 0.5, {0.0, 1.0}),
                   0.0);
  const std::vector<const RankSampleSet*> none = {};
  EXPECT_DOUBLE_EQ(basic_counting_estimate(none, 0.5, {0.0, 1.0}), 0.0);
}

TEST(EstimatorEdgeCases, MixedEmptyAndLoadedNodes) {
  const RankSampleSet loaded({{3.0, 3}});
  const RankSampleSet empty;
  const std::vector<NodeSampleView> views = {
      {&loaded, 10}, {&empty, 0}, {&empty, 7}};
  // Node 2 (7 items, no samples) contributes n_i = 7 via case 4; node 1
  // contributes 0.
  const query::RangeQuery range{0.0, 100.0};
  const double expected =
      rank_counting_node_estimate(loaded, 10, 0.5, range) + 0.0 + 7.0;
  EXPECT_DOUBLE_EQ(rank_counting_estimate(views, 0.5, range), expected);
}

}  // namespace
}  // namespace prc::estimator
