// Protocol-level integration: run a sampling round where every message is
// actually encoded with the wire codec and decoded on the other side,
// verifying the simulator's in-memory protocol and the byte format agree.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "iot/base_station.h"
#include "iot/codec.h"
#include "iot/node.h"
#include "query/range_query.h"

namespace prc::iot {
namespace {

TEST(ProtocolIntegrationTest, FullRoundOverEncodedFrames) {
  const std::size_t k = 4;
  const double p = 0.3;

  std::vector<SensorNode> nodes;
  Rng master(99);
  std::size_t total = 0;
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<double> values;
    for (int j = 0; j < 500; ++j) {
      values.push_back(static_cast<double>(j) + static_cast<double>(i) * 0.1);
    }
    total += values.size();
    nodes.emplace_back(static_cast<int>(i), std::move(values),
                       master.split());
  }
  BaseStation station(k);

  std::size_t bytes_on_wire = 0;
  std::uint32_t sequence = 0;
  for (auto& node : nodes) {
    // Downlink: encode the request, ship bytes, decode at the node.
    const SampleRequest request{node.id(), p};
    const auto request_frame = encode(request, sequence++);
    bytes_on_wire += request_frame.size();
    ASSERT_EQ(peek_type(request_frame), MessageType::kSampleRequest);
    const auto decoded_request = decode_sample_request(request_frame);
    ASSERT_EQ(decoded_request.node_id, node.id());
    ASSERT_DOUBLE_EQ(decoded_request.target_p, p);

    // Uplink: the node's report crosses the wire the same way.
    const SampleReport report = node.handle(decoded_request);
    const auto report_frame = encode(report, sequence++);
    bytes_on_wire += report_frame.size();
    ASSERT_EQ(peek_type(report_frame), MessageType::kSampleReport);
    const auto decoded_report = decode_sample_report(report_frame);
    ASSERT_EQ(decoded_report.new_samples.size(), report.new_samples.size());
    station.ingest(decoded_report);
  }
  station.commit_round(p);

  // The station reconstructed the full protocol state from bytes alone.
  EXPECT_EQ(station.total_data_count(), total);
  EXPECT_GT(station.cached_sample_count(), 0u);
  EXPECT_GT(bytes_on_wire, 0u);

  // Full-domain estimate is exact (case 4 of the estimator per node).
  EXPECT_DOUBLE_EQ(station.rank_counting_estimate({-1e9, 1e9}),
                   static_cast<double>(total));
  // Interior estimate lands near truth.
  const double estimate = station.rank_counting_estimate({100.5, 400.5});
  EXPECT_NEAR(estimate, 4.0 * 300.0,
              10.0 * std::sqrt(8.0 * static_cast<double>(k)) / p);
}

TEST(ProtocolIntegrationTest, HeartbeatPiggybackSizeModel) {
  // A report small enough to piggyback costs (in the simulator's model)
  // sample payload + n_i only; verify the full encoded frame differs by
  // exactly the header the piggyback saves.
  SampleReport report;
  report.node_id = 1;
  report.data_count = 100;
  for (std::uint64_t i = 1; i <= kHeartbeatPiggybackSamples; ++i) {
    report.new_samples.push_back({static_cast<double>(i), i});
  }
  const auto frame = encode(report);
  const std::size_t piggyback_cost =
      report.new_samples.size() * kSampleWireBytes + sizeof(std::uint64_t);
  EXPECT_EQ(frame.size(), piggyback_cost + kMessageHeaderBytes);
}

}  // namespace
}  // namespace prc::iot
