// Fault-injection layer: bounded retries, partial rounds, per-node
// probabilities, and the coverage-aware DP/market behavior built on top.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "dp/amplification.h"
#include "dp/private_counting.h"
#include "estimator/accuracy.h"
#include "estimator/rank_counting.h"
#include "iot/faults.h"
#include "iot/network.h"
#include "iot/tree_network.h"
#include "market/broker.h"
#include "pricing/pricing.h"
#include "query/range_query.h"

namespace prc {
namespace {

std::vector<std::vector<double>> random_node_data(std::size_t nodes,
                                                  std::size_t per_node,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> data(nodes);
  for (auto& values : data) {
    for (std::size_t j = 0; j < per_node; ++j) {
      values.push_back(rng.uniform(0.0, 1000.0));
    }
  }
  return data;
}

std::size_t true_count(const std::vector<std::vector<double>>& data,
                       const query::RangeQuery& range) {
  std::size_t count = 0;
  for (const auto& values : data) {
    for (const double v : values) {
      if (v >= range.lower && v <= range.upper) ++count;
    }
  }
  return count;
}

// ---------------------------------------------------------------- schedule

TEST(FaultConfigTest, ValidatesProbabilities) {
  iot::FaultConfig config;
  config.crash_probability = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.crash_probability = 0.1;
  config.loss_bad = 1.0;  // a channel that never delivers would hang
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.loss_bad = 0.8;
  config.good_to_bad = 0.3;
  config.bad_to_good = 0.0;  // bursts must be able to end
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.bad_to_good = 0.2;
  EXPECT_NO_THROW(config.validate());
}

TEST(FaultScheduleTest, DisabledScheduleIsInert) {
  iot::FaultSchedule schedule;  // default: disabled
  EXPECT_FALSE(schedule.enabled());
  schedule.begin_round();
  EXPECT_EQ(schedule.rounds_elapsed(), 0u);
  EXPECT_FALSE(schedule.node_offline(0));
  EXPECT_FALSE(schedule.attempt_lost(0));
  EXPECT_FALSE(schedule.duplicate_frame(0));
}

TEST(FaultScheduleTest, SameSeedSameSchedule) {
  iot::FaultConfig config;
  config.crash_probability = 0.3;
  config.good_to_bad = 0.2;
  config.loss_bad = 0.6;
  config.duplication_probability = 0.1;
  iot::FaultSchedule a(config, 6);
  iot::FaultSchedule b(config, 6);
  for (int round = 0; round < 20; ++round) {
    a.begin_round();
    b.begin_round();
    for (std::size_t node = 0; node < 6; ++node) {
      ASSERT_EQ(a.node_offline(node), b.node_offline(node));
      ASSERT_EQ(a.attempt_lost(node), b.attempt_lost(node));
    }
    ASSERT_EQ(a.duplicate_frame(0), b.duplicate_frame(0));
  }
  EXPECT_EQ(a.offline_node_count(), b.offline_node_count());
}

TEST(FaultScheduleTest, ChurnCrashesAndRejoins) {
  iot::FaultConfig config;
  config.crash_probability = 0.5;
  config.rejoin_probability = 0.5;
  iot::FaultSchedule schedule(config, 20);
  std::size_t saw_offline = 0;
  std::size_t saw_rejoin = 0;
  std::vector<bool> was_offline(20, false);
  for (int round = 0; round < 40; ++round) {
    schedule.begin_round();
    for (std::size_t node = 0; node < 20; ++node) {
      if (schedule.node_offline(node)) {
        ++saw_offline;
        was_offline[node] = true;
      } else if (was_offline[node]) {
        ++saw_rejoin;
        was_offline[node] = false;
      }
    }
  }
  EXPECT_GT(saw_offline, 0u);
  EXPECT_GT(saw_rejoin, 0u);
}

// ------------------------------------------------------- bounded delivery

TEST(BoundedRetryTest, HeavyLossWithOneAttemptTerminatesPartially) {
  // The ISSUE acceptance scenario: max_attempts = 1 under 50% loss must
  // terminate with a partial round instead of retrying forever.
  iot::NetworkConfig config;
  config.frame_loss_probability = 0.5;
  config.max_attempts = 1;
  config.seed = 11;
  iot::FlatNetwork network(random_node_data(8, 300, 5), config);
  const auto report = network.ensure_sampling_probability(0.4);

  EXPECT_EQ(report.outcomes.size(), 8u);
  EXPECT_GT(report.dropped_frames, 0u);
  EXPECT_EQ(report.retries, report.dropped_frames);  // one attempt: no backoff
  EXPECT_LT(report.delivered_nodes(), 8u);
  EXPECT_GT(report.dropped_nodes(), 0u);
  EXPECT_FALSE(report.complete());
  // Some node missed the round entirely, so its data is invisible to
  // estimates (coverage is computed over station-KNOWN data and can read
  // 1.0 when the dropped nodes never reported at all).
  EXPECT_EQ(report.min_probability, 0.0);

  const auto& stats = network.stats();
  EXPECT_EQ(stats.frames_attempted,
            stats.frames_delivered + stats.dropped_frames);
  EXPECT_EQ(stats.backoff_slots, 0u);  // budget of one: never waits

  // The round target advanced even though some nodes missed it.
  EXPECT_DOUBLE_EQ(network.base_station().sampling_probability(), 0.4);
  for (std::size_t i = 0; i < 8; ++i) {
    const double p_i = network.base_station().node_probability(i);
    if (report.outcomes[i] == iot::NodeOutcome::kDelivered) {
      EXPECT_DOUBLE_EQ(p_i, 0.4);
    } else {
      EXPECT_LT(p_i, 0.4);
    }
  }
}

TEST(BoundedRetryTest, DroppedNodesRecoverInLaterRounds) {
  iot::NetworkConfig lossy;
  lossy.frame_loss_probability = 0.3;
  lossy.max_attempts = 2;
  lossy.seed = 23;
  iot::FlatNetwork network(random_node_data(4, 100, 9), lossy);
  network.ensure_sampling_probability(0.3);
  // Escalating repeatedly re-attempts delivery for dropped nodes; with
  // fresh loss draws every round, everyone eventually catches up.
  bool completed = false;
  for (int round = 0; round < 60 && !completed; ++round) {
    const auto report = network.ensure_sampling_probability(
        std::min(1.0, 0.32 + 0.01 * round));
    completed = report.complete();
  }
  ASSERT_TRUE(completed);  // a full round happened despite bounded retries
  const auto cov = network.base_station().coverage();
  EXPECT_TRUE(cov.complete());
  EXPECT_GT(cov.min_probability, 0.3);
  // Full-domain estimates stay exact through all the partial rounds.
  const double estimate =
      network.rank_counting_estimate(query::RangeQuery{-1e18, 1e18});
  EXPECT_DOUBLE_EQ(estimate, static_cast<double>(4 * 100));
}

TEST(BoundedRetryTest, UnboundedBackoffAccumulatesUnderLoss) {
  iot::NetworkConfig config;
  config.frame_loss_probability = 0.4;
  config.seed = 3;  // max_attempts = 0: seed behavior, always completes
  iot::FlatNetwork network(random_node_data(5, 400, 2), config);
  const auto report = network.ensure_sampling_probability(0.5);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.dropped_frames, 0u);
  EXPECT_GT(report.retries, 0u);
  EXPECT_GT(network.stats().backoff_slots, 0u);
  EXPECT_EQ(network.stats().frames_attempted,
            network.stats().frames_delivered);
}

TEST(BoundedRetryTest, LossyCollectionIsDeterministic) {
  // Identical configs replay the exact same losses, retries, and samples —
  // the property that makes a degraded run debuggable.
  iot::NetworkConfig config;
  config.frame_loss_probability = 0.2;
  config.seed = 31;
  iot::FlatNetwork with_layer(random_node_data(4, 250, 7), config);
  iot::FlatNetwork reference(random_node_data(4, 250, 7), config);
  with_layer.ensure_sampling_probability(0.3);
  reference.ensure_sampling_probability(0.3);
  EXPECT_EQ(with_layer.stats().total_bytes(), reference.stats().total_bytes());
  EXPECT_EQ(with_layer.stats().retransmissions,
            reference.stats().retransmissions);
  EXPECT_EQ(with_layer.stats().dropped_frames, 0u);
  EXPECT_DOUBLE_EQ(
      with_layer.rank_counting_estimate(query::RangeQuery{100.0, 700.0}),
      reference.rank_counting_estimate(query::RangeQuery{100.0, 700.0}));
}

TEST(FaultInjectionTest, DuplicationCostsBytesButNeverCorruptsTheCache) {
  iot::NetworkConfig clean;
  clean.seed = 17;
  iot::NetworkConfig duplicating = clean;
  duplicating.faults.duplication_probability = 1.0;
  iot::FlatNetwork a(random_node_data(5, 300, 3), clean);
  iot::FlatNetwork b(random_node_data(5, 300, 3), duplicating);
  a.ensure_sampling_probability(0.4);
  const auto report = b.ensure_sampling_probability(0.4);

  EXPECT_GT(b.stats().duplicated_frames, 0u);
  EXPECT_GT(b.stats().total_bytes(), a.stats().total_bytes());
  // Duplicates are charged but never re-ingested: cache and estimates
  // identical to the clean run.
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(a.base_station().cached_sample_count(),
            b.base_station().cached_sample_count());
  EXPECT_DOUBLE_EQ(
      a.rank_counting_estimate(query::RangeQuery{200.0, 600.0}),
      b.rank_counting_estimate(query::RangeQuery{200.0, 600.0}));
}

TEST(FaultInjectionTest, BurstyLossDrivesRetriesWithoutChangingSampling) {
  iot::NetworkConfig bursty;
  bursty.seed = 41;
  bursty.faults.good_to_bad = 0.3;
  bursty.faults.bad_to_good = 0.3;
  bursty.faults.loss_bad = 0.8;
  iot::NetworkConfig clean;
  clean.seed = 41;
  iot::FlatNetwork a(random_node_data(4, 300, 1), clean);
  iot::FlatNetwork b(random_node_data(4, 300, 1), bursty);
  a.ensure_sampling_probability(0.5);
  const auto report = b.ensure_sampling_probability(0.5);
  EXPECT_TRUE(report.complete());  // unbounded retries still deliver all
  EXPECT_GT(report.retries, 0u);
  EXPECT_GT(b.stats().total_bytes(), a.stats().total_bytes());
  // The burst channel draws from its own stream: the samples collected are
  // the ones the clean network collects.
  EXPECT_EQ(a.base_station().cached_sample_count(),
            b.base_station().cached_sample_count());
  EXPECT_DOUBLE_EQ(
      a.rank_counting_estimate(query::RangeQuery{0.0, 500.0}),
      b.rank_counting_estimate(query::RangeQuery{0.0, 500.0}));
}

// ------------------------------------------------ stale-probability bias

TEST(StalePBiasTest, HeterogeneousEstimatorFixesStaleProbabilityBias) {
  // Regression for the seed-state bias: node 0 sits out the top-up round
  // from p=0.2 to p=0.8.  Its cached Bernoulli(0.2) sample is perfectly
  // valid, but correcting it with the global p=0.8 (seed behavior) applies
  // -2/0.8 where -2/0.2 is owed: +7.5 expected error per trial.  The
  // per-node Horvitz-Thompson estimate stays unbiased.
  const query::RangeQuery range{200.5, 800.5};
  const int trials = 400;
  double hetero_error_sum = 0.0;
  double global_error_sum = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto data =
        random_node_data(3, 500, 1000 + static_cast<std::uint64_t>(trial));
    iot::NetworkConfig config;
    config.seed = 5000 + static_cast<std::uint64_t>(trial);
    iot::FlatNetwork network(data, config);
    network.ensure_sampling_probability(0.2);
    network.set_node_online(0, false);
    const auto report = network.ensure_sampling_probability(0.8);
    ASSERT_EQ(report.outcomes[0], iot::NodeOutcome::kStale);
    ASSERT_DOUBLE_EQ(network.base_station().node_probability(0), 0.2);
    ASSERT_DOUBLE_EQ(network.base_station().node_probability(1), 0.8);

    const double truth = static_cast<double>(true_count(data, range));
    // Per-node p_i (the fix).
    const double hetero = network.rank_counting_estimate(range);
    // Seed-style: the same cache corrected with one global p.
    const double global = estimator::rank_counting_estimate(
        network.base_station().node_views(), 0.8, range);
    hetero_error_sum += hetero - truth;
    global_error_sum += global - truth;
  }
  const double hetero_mean = hetero_error_sum / trials;
  const double global_mean = global_error_sum / trials;
  // Per-trial sigma is ~15 (variance bound 8/0.04 + 2*8/0.64), so the mean
  // of 400 trials has sigma ~0.75: the +7.5 bias is ~10 sigma out while the
  // unbiased estimator stays within ~4 sigma of zero.
  EXPECT_LT(std::abs(hetero_mean), 3.0);
  EXPECT_GT(global_mean, 4.0);
}

TEST(StalePBiasTest, CoverageSummaryTracksStragglers) {
  iot::FlatNetwork network(random_node_data(4, 250, 21));
  network.ensure_sampling_probability(0.25);
  network.set_node_online(2, false);
  const auto report = network.ensure_sampling_probability(0.5);
  EXPECT_EQ(report.stale_nodes(), 1u);
  EXPECT_EQ(report.delivered_nodes(), 3u);
  const auto cov = network.base_station().coverage();
  EXPECT_FALSE(cov.complete());
  EXPECT_EQ(cov.stale_nodes, 1u);
  EXPECT_EQ(cov.reported_nodes, 4u);
  EXPECT_DOUBLE_EQ(cov.min_probability, 0.25);
  EXPECT_DOUBLE_EQ(cov.max_probability, 0.5);
  EXPECT_NEAR(cov.coverage, 0.75, 1e-12);

  // The checkpoint carries the per-node probabilities (wire format v2), so
  // a restarted broker keeps the unbiased estimates.
  const auto bytes = network.base_station().serialize();
  const auto restored = iot::BaseStation::deserialize(bytes);
  EXPECT_EQ(restored.node_probabilities(),
            network.base_station().node_probabilities());
  const query::RangeQuery range{100.0, 900.0};
  EXPECT_DOUBLE_EQ(restored.rank_counting_estimate(range),
                   network.base_station().rank_counting_estimate(range));
}

TEST(StalePBiasTest, HeterogeneousAccuracyMatchesUniformWhenEqual) {
  const std::vector<double> uniform(5, 0.3);
  EXPECT_NEAR(estimator::achieved_delta_heterogeneous(uniform, 0.05, 10000),
              estimator::achieved_delta(0.3, 0.05, 5, 10000), 1e-12);
  EXPECT_NEAR(estimator::heterogeneous_error_bound(uniform, 0.9),
              estimator::error_bound_at_confidence(0.3, 5, 0.9), 1e-9);
  EXPECT_THROW(
      estimator::heterogeneous_error_bound(std::vector<double>{0.3, 0.0}, 0.9),
      std::invalid_argument);
  EXPECT_THROW(estimator::heterogeneous_error_bound(std::vector<double>{}, 0.9),
               std::invalid_argument);
}

// ---------------------------------------------------------------- tree

TEST(TreeFaultTest, OfflineInteriorNodeSeversItsSubtree) {
  // Fanout 2 over 7 nodes: node 0 (slot 1) relays for nodes 2, 3 (slots
  // 3, 4) and node 6 (slot 7, child of slot 3).
  iot::TreeConfig config;
  config.fanout = 2;
  config.seed = 13;
  iot::TreeNetwork network(random_node_data(7, 200, 19), config);
  network.ensure_sampling_probability(0.2);
  network.set_node_online(0, false);
  const auto report = network.ensure_sampling_probability(0.5);

  EXPECT_EQ(report.severed_reports, 3u);
  EXPECT_EQ(report.outcomes[0], iot::NodeOutcome::kStale);  // offline itself
  EXPECT_EQ(report.outcomes[2], iot::NodeOutcome::kStale);  // severed
  EXPECT_EQ(report.outcomes[3], iot::NodeOutcome::kStale);
  EXPECT_EQ(report.outcomes[6], iot::NodeOutcome::kStale);
  EXPECT_EQ(report.outcomes[1], iot::NodeOutcome::kDelivered);
  EXPECT_EQ(report.outcomes[4], iot::NodeOutcome::kDelivered);
  EXPECT_EQ(report.outcomes[5], iot::NodeOutcome::kDelivered);
  EXPECT_FALSE(network.route_to_root_alive(6));
  EXPECT_TRUE(network.route_to_root_alive(0));  // its own path has no relay

  // Severed nodes keep their old p_i; estimates stay exact on full domain.
  EXPECT_DOUBLE_EQ(network.base_station().node_probability(2), 0.2);
  EXPECT_DOUBLE_EQ(network.base_station().node_probability(1), 0.5);
  EXPECT_DOUBLE_EQ(
      network.rank_counting_estimate(query::RangeQuery{-1e18, 1e18}),
      static_cast<double>(7 * 200));

  // The subtree rejoins and catches up.
  network.set_node_online(0, true);
  const auto recovered = network.ensure_sampling_probability(0.6);
  EXPECT_TRUE(recovered.complete());
  EXPECT_EQ(recovered.severed_reports, 0u);
  EXPECT_DOUBLE_EQ(network.base_station().node_probability(2), 0.6);
}

TEST(TreeFaultTest, BoundedRetriesDropReportsButKeepAccounting) {
  iot::TreeConfig config;
  config.fanout = 2;
  config.frame_loss_probability = 0.5;
  config.max_attempts = 1;
  config.seed = 29;
  iot::TreeNetwork network(random_node_data(7, 150, 31), config);
  const auto report = network.ensure_sampling_probability(0.4);
  EXPECT_FALSE(report.complete());
  EXPECT_GT(report.dropped_frames, 0u);
  const auto& stats = network.stats();
  EXPECT_EQ(stats.frames_attempted,
            stats.frames_delivered + stats.dropped_frames);
  // Deep nodes must cross more links, so each delivered deep report still
  // charged every level on its path.
  EXPECT_DOUBLE_EQ(
      network.rank_counting_estimate(query::RangeQuery{-1e18, 1e18}),
      static_cast<double>(network.base_station().total_data_count()));
}

// ------------------------------------------------------------ DP + market

std::unique_ptr<pricing::PricingFunction> test_pricing(std::size_t total,
                                                       std::size_t nodes) {
  return std::make_unique<pricing::InverseVariancePricing>(
      pricing::VarianceModel(total, nodes), query::AccuracySpec{0.1, 0.5},
      100.0, 1.0);
}

TEST(CoverageAwareDpTest, UnreportedNodeRaisesCoverageError) {
  iot::FlatNetwork network(random_node_data(3, 400, 43));
  network.set_node_online(0, false);  // never reports at all
  dp::PrivateRangeCounter counter(network);
  try {
    counter.answer(query::RangeQuery{100.0, 600.0},
                   query::AccuracySpec{0.2, 0.5});
    FAIL() << "expected CoverageError";
  } catch (const dp::CoverageError& err) {
    EXPECT_DOUBLE_EQ(err.coverage().min_probability, 0.0);
    EXPECT_EQ(err.coverage().reported_nodes, 2u);
    EXPECT_FALSE(err.coverage().complete());
  }
}

TEST(CoverageAwareDpTest, StaleNodeWidensAmplifiedBudgetHonestly) {
  iot::FlatNetwork network(random_node_data(3, 400, 47));
  network.ensure_sampling_probability(0.2);
  network.set_node_online(0, false);
  network.ensure_sampling_probability(0.4);  // node 0 goes stale at 0.2
  dp::PrivateRangeCounter counter(network);
  // Loose enough to be feasible at the stale node's p=0.2 without topping
  // up past the cached 0.4 round target.
  const auto answer = counter.answer(query::RangeQuery{100.0, 600.0},
                                     query::AccuracySpec{0.6, 0.5});
  EXPECT_FALSE(answer.coverage.complete());
  EXPECT_DOUBLE_EQ(answer.coverage.min_probability, 0.2);
  EXPECT_DOUBLE_EQ(answer.coverage.max_probability, 0.4);
  // Accuracy was argued at min p_i, but amplification must be priced at
  // max p_i (the most-included node enjoys the least amplification): the
  // effective budget exceeds the naive amplification at the plan's p.
  EXPECT_DOUBLE_EQ(answer.plan.sampling_probability, 0.2);
  EXPECT_GT(answer.plan.epsilon_amplified,
            dp::amplified_epsilon(answer.plan.epsilon,
                                  answer.coverage.min_probability));
}

TEST(CoverageAwareBrokerTest, RefusePolicySpendsNothing) {
  iot::FlatNetwork network(random_node_data(3, 400, 53));
  network.set_node_online(0, false);
  dp::PrivateRangeCounter counter(network);
  market::DataBroker broker(counter, test_pricing(1200, 3));  // kRefuse
  EXPECT_THROW(broker.sell("alice", query::RangeQuery{100.0, 600.0},
                           query::AccuracySpec{0.2, 0.5}),
               market::InsufficientCoverageError);
  EXPECT_EQ(broker.ledger().transaction_count(), 0u);
  EXPECT_DOUBLE_EQ(broker.ledger().total_epsilon(), 0.0);
}

TEST(CoverageAwareBrokerTest, RepricePolicySellsWeakerContract) {
  iot::FlatNetwork network(random_node_data(3, 400, 59));
  network.ensure_sampling_probability(0.1);
  network.set_node_online(0, false);  // stuck at p=0.1 from here on
  dp::PrivateRangeCounter counter(network);
  market::BrokerConfig config;
  config.degraded_policy = market::DegradedSalePolicy::kReprice;
  market::DataBroker broker(counter, test_pricing(1200, 3), config);

  const query::AccuracySpec requested{0.05, 0.9};  // needs p ~0.26 everywhere
  const double full_price = broker.quote(requested);
  const auto receipt =
      broker.sell("alice", query::RangeQuery{100.0, 600.0}, requested);

  EXPECT_TRUE(receipt.degraded);
  EXPECT_GT(receipt.spec.alpha, requested.alpha);  // weaker contract
  EXPECT_DOUBLE_EQ(receipt.requested.alpha, requested.alpha);
  EXPECT_LT(receipt.price, full_price);  // priced at what was delivered
  EXPECT_LT(receipt.coverage, 1.0);
  EXPECT_EQ(broker.ledger().degraded_sales(), 1u);
  const auto transaction = broker.ledger().transactions_snapshot().front();
  EXPECT_TRUE(transaction.degraded);
  EXPECT_LT(transaction.coverage, 1.0);
  EXPECT_DOUBLE_EQ(transaction.spec.alpha, receipt.spec.alpha);
}

TEST(CoverageAwareBrokerTest, CoverageFloorRefusesEvenUnderReprice) {
  iot::FlatNetwork network(random_node_data(4, 300, 61));
  network.ensure_sampling_probability(0.2);
  network.set_node_online(0, false);
  network.set_node_online(1, false);
  network.ensure_sampling_probability(0.8);  // half the data goes stale
  dp::PrivateRangeCounter counter(network);
  market::BrokerConfig config;
  config.degraded_policy = market::DegradedSalePolicy::kReprice;
  config.min_coverage = 0.9;
  market::DataBroker broker(counter, test_pricing(1200, 4), config);
  try {
    broker.sell("bob", query::RangeQuery{100.0, 600.0},
                query::AccuracySpec{0.3, 0.5});
    FAIL() << "expected InsufficientCoverageError";
  } catch (const market::InsufficientCoverageError& err) {
    EXPECT_LT(err.coverage().coverage, 0.9);
  }
  EXPECT_EQ(broker.ledger().transaction_count(), 0u);
}

}  // namespace
}  // namespace prc
