#include "iot/codec.h"

#include <gtest/gtest.h>

#include <string>

namespace prc::iot {
namespace {

TEST(CodecTest, Crc32KnownVector) {
  // The canonical "123456789" check value for CRC-32/IEEE.
  const std::string check = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(check.data()),
                  check.size()),
            0xcbf43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(CodecTest, SampleRequestRoundTrip) {
  const SampleRequest original{42, 0.37};
  const auto frame = encode(original, /*sequence=*/7);
  EXPECT_EQ(frame.size(), original.wire_size());
  EXPECT_EQ(peek_type(frame), MessageType::kSampleRequest);
  const auto decoded = decode_sample_request(frame);
  EXPECT_EQ(decoded.node_id, 42);
  EXPECT_DOUBLE_EQ(decoded.target_p, 0.37);
}

TEST(CodecTest, SampleReportRoundTrip) {
  SampleReport original;
  original.node_id = 3;
  original.data_count = 9876;
  original.new_samples = {{1.5, 2}, {-7.25, 19}, {3.14159, 4096}};
  const auto frame = encode(original, 11);
  EXPECT_EQ(frame.size(), original.wire_size());
  EXPECT_EQ(peek_type(frame), MessageType::kSampleReport);
  const auto decoded = decode_sample_report(frame);
  EXPECT_EQ(decoded.node_id, 3);
  EXPECT_EQ(decoded.data_count, 9876u);
  ASSERT_EQ(decoded.new_samples.size(), 3u);
  EXPECT_EQ(decoded.new_samples[0], original.new_samples[0]);
  EXPECT_EQ(decoded.new_samples[1], original.new_samples[1]);
  EXPECT_EQ(decoded.new_samples[2], original.new_samples[2]);
}

TEST(CodecTest, EmptyReportRoundTrip) {
  SampleReport original;
  original.node_id = 0;
  original.data_count = 0;
  const auto frame = encode(original);
  EXPECT_EQ(frame.size(), original.wire_size());
  const auto decoded = decode_sample_report(frame);
  EXPECT_TRUE(decoded.new_samples.empty());
}

TEST(CodecTest, HeartbeatRoundTrip) {
  const Heartbeat original{12};
  const auto frame = encode(original, 99);
  EXPECT_EQ(frame.size(), original.wire_size());
  EXPECT_EQ(decode_heartbeat(frame).node_id, 12);
}

TEST(CodecTest, EncodedSizeMatchesWireSizeModel) {
  // The whole communication-cost model rests on wire_size(); the codec must
  // agree byte-for-byte for every payload size.
  for (std::size_t samples : {0u, 1u, 16u, 64u, 257u}) {
    SampleReport report;
    report.node_id = 1;
    report.data_count = samples * 10;
    for (std::size_t i = 0; i < samples; ++i) {
      report.new_samples.push_back({static_cast<double>(i), i + 1});
    }
    EXPECT_EQ(encode(report).size(), report.wire_size()) << samples;
  }
}

TEST(CodecTest, RejectsCorruptedFrames) {
  const auto frame = encode(SampleRequest{1, 0.5});
  // Truncation.
  std::vector<std::uint8_t> truncated(frame.begin(), frame.begin() + 10);
  EXPECT_THROW(decode_sample_request(truncated), CodecError);
  // Bad magic.
  auto bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_sample_request(bad_magic), CodecError);
  EXPECT_THROW(peek_type(bad_magic), CodecError);
  // Flipped payload bit -> CRC mismatch.
  auto flipped = frame;
  flipped.back() ^= 0x01;
  EXPECT_THROW(decode_sample_request(flipped), CodecError);
  // Flipped header bit -> CRC mismatch.
  auto flipped_header = frame;
  flipped_header[5] ^= 0x80;
  EXPECT_THROW(decode_sample_request(flipped_header), CodecError);
}

TEST(CodecTest, RejectsTypeConfusion) {
  const auto request = encode(SampleRequest{1, 0.5});
  EXPECT_THROW(decode_sample_report(request), CodecError);
  EXPECT_THROW(decode_heartbeat(request), CodecError);
  const auto beat = encode(Heartbeat{2});
  EXPECT_THROW(decode_sample_request(beat), CodecError);
}

TEST(CodecTest, RejectsUnknownType) {
  auto frame = encode(Heartbeat{1});
  frame[1] = 77;  // not a MessageType; lint:allow index (fresh frame)
  EXPECT_THROW(peek_type(frame), CodecError);
}

TEST(CodecTest, RejectsRaggedReportPayload) {
  auto frame = encode(SampleReport{1, 5, {{1.0, 1}}});
  // Grow payload by one byte and fix the declared length so only the
  // 16-byte alignment check can catch it.
  frame.push_back(0);
  frame[8] =  // lint:allow index (fresh frame >= header size)
      static_cast<std::uint8_t>(frame.size() - 20);
  EXPECT_THROW(decode_sample_report(frame), CodecError);
}

}  // namespace
}  // namespace prc::iot
