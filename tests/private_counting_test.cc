#include "dp/private_counting.h"
#include "iot/network.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/partition.h"
#include "query/range_query.h"

namespace prc::dp {
namespace {

std::vector<std::vector<double>> make_node_data(std::size_t nodes,
                                                std::size_t total) {
  std::vector<double> values(total);
  for (std::size_t i = 0; i < total; ++i) values[i] = static_cast<double>(i);
  Rng rng(9);
  return data::partition_values(values, nodes,
                                data::PartitionStrategy::kRoundRobin, rng);
}

TEST(PrivateRangeCounterTest, RejectsBadHeadroom) {
  iot::FlatNetwork network(make_node_data(4, 1000));
  PrivateCounterConfig config;
  config.probability_headroom = 0.5;
  EXPECT_THROW(PrivateRangeCounter(network, config), std::invalid_argument);
}

TEST(PrivateRangeCounterTest, AnswerCarriesConsistentPlan) {
  iot::FlatNetwork network(make_node_data(8, 20000));
  PrivateRangeCounter counter(network);
  const query::AccuracySpec spec{0.05, 0.8};
  const auto answer = counter.answer({1000.5, 15000.5}, spec);
  EXPECT_EQ(answer.plan.alpha, spec.alpha);
  EXPECT_EQ(answer.plan.delta, spec.delta);
  EXPECT_GT(answer.plan.epsilon_amplified, 0.0);
  // Cross-unit on purpose: the Lemma 3.4 amplification check.
  EXPECT_LT(answer.plan.epsilon_amplified.value(), answer.plan.epsilon.value());
  EXPECT_DOUBLE_EQ(answer.plan.sampling_probability,
                   network.base_station().sampling_probability());
  // Clamped to the count domain.
  EXPECT_GE(answer.value, 0.0);
  EXPECT_LE(answer.value, 20000.0);
}

TEST(PrivateRangeCounterTest, TopsUpOnlyWhenNeeded) {
  iot::FlatNetwork network(make_node_data(8, 20000));
  PrivateRangeCounter counter(network);
  counter.answer({100.5, 1000.5}, {0.10, 0.5});
  const double p_after_loose = network.base_station().sampling_probability();
  // A second, equally loose query reuses the cache (one sample, many
  // queries).
  const auto bytes_before = network.stats().total_bytes();
  counter.answer({2000.5, 3000.5}, {0.10, 0.5});
  EXPECT_EQ(network.stats().total_bytes(), bytes_before);
  // A stricter query forces a top-up.
  counter.answer({100.5, 1000.5}, {0.02, 0.9});
  EXPECT_GT(network.base_station().sampling_probability(), p_after_loose);
}

TEST(PrivateRangeCounterTest, InfeasibleContractThrows) {
  // 2000 items on 50 nodes: even p=1 leaves 8k/(alpha' n)^2 too big for a
  // very tight contract.
  iot::FlatNetwork network(make_node_data(50, 2000));
  PrivateRangeCounter counter(network);
  EXPECT_THROW(counter.answer({10.5, 100.5}, {0.011, 0.9}),
               std::runtime_error);
}

TEST(PrivateRangeCounterTest, PlanForQuotesWithoutNetworkTraffic) {
  iot::FlatNetwork network(make_node_data(8, 20000));
  PrivateRangeCounter counter(network);
  const auto bytes_before = network.stats().total_bytes();
  const auto plan = counter.plan_for({0.05, 0.8});
  EXPECT_EQ(network.stats().total_bytes(), bytes_before);
  EXPECT_GT(plan.epsilon, 0.0);
  // Executing afterwards uses an equally good or better plan (more samples
  // can only help).
  const auto answer = counter.answer({100.5, 15000.5}, {0.05, 0.8});
  EXPECT_LE(answer.plan.epsilon_amplified, plan.epsilon_amplified * 1.01);
}

TEST(PrivateRangeCounterTest, UnclampedAnswersCanBeNegative) {
  iot::FlatNetwork network(make_node_data(4, 5000));
  PrivateCounterConfig config;
  config.clamp_to_domain = false;
  PrivateRangeCounter counter(network, config, /*seed=*/11);
  // Empty range: the sampled estimate hovers near 0, so unclamped noisy
  // answers go negative about half the time.
  int negative = 0;
  for (int i = 0; i < 50; ++i) {
    if (counter.answer({-10.0, -5.0}, {0.2, 0.5}).value < 0.0) ++negative;
  }
  EXPECT_GT(negative, 5);
}

// End-to-end (alpha, delta) contract: the noisy answers must fall within
// alpha*n of the truth at least delta of the time.  This is the paper's
// central correctness property for the whole two-phase pipeline.
struct PipelineCase {
  double alpha;
  double delta;
};

class PrivatePipelineContract
    : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PrivatePipelineContract, ContractHolds) {
  const auto [alpha, delta] = GetParam();
  const std::size_t total = 20000;
  const query::RangeQuery range{2000.5, 17000.5};
  const double truth = 15000.0;

  const int trials = 300;
  int within = 0;
  for (int t = 0; t < trials; ++t) {
    iot::FlatNetwork network(make_node_data(8, total),
                             {.frame_loss_probability = 0.0,
                              .seed = static_cast<std::uint64_t>(t) * 31 + 1,
                              .faults = {},
                              .max_attempts = 0});
    PrivateRangeCounter counter(network, {},
                                static_cast<std::uint64_t>(t) * 17 + 3);
    const auto answer = counter.answer(range, {alpha, delta});
    if (std::abs(answer.value - truth) <= alpha * static_cast<double>(total)) {
      ++within;
    }
  }
  const double margin = 3.0 * std::sqrt(delta * (1.0 - delta) / trials);
  EXPECT_GE(static_cast<double>(within) / trials, delta - margin)
      << "alpha=" << alpha << " delta=" << delta;
}

INSTANTIATE_TEST_SUITE_P(
    ContractSweep, PrivatePipelineContract,
    ::testing::Values(PipelineCase{0.05, 0.6}, PipelineCase{0.10, 0.8},
                      PipelineCase{0.15, 0.9}, PipelineCase{0.08, 0.5}),
    [](const ::testing::TestParamInfo<PipelineCase>& case_info) {
      return "a" + std::to_string(static_cast<int>(case_info.param.alpha * 100)) +
             "_d" + std::to_string(static_cast<int>(case_info.param.delta * 100));
    });

}  // namespace
}  // namespace prc::dp
