// Metrics registry: counters/gauges/histograms, quantile accuracy against
// an exact sort, snapshot JSON round-trip, reset-in-place reference
// stability, and registry thread-safety (run under TSan by CI).

#include "common/telemetry.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace prc::telemetry {
namespace {

TEST(CounterTest, IncrementsMonotonically) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.increment();
  counter.increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), std::exception);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::exception);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::exception);
}

TEST(HistogramTest, TracksCountSumMinMax) {
  Histogram hist({1.0, 10.0, 100.0});
  hist.record(0.5);
  hist.record(5.0);
  hist.record(500.0);  // overflow bucket
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 505.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 500.0);
  ASSERT_EQ(snap.bucket_counts.size(), snap.bounds.size() + 1);
  EXPECT_EQ(snap.bucket_counts.back(), 1u);  // the 500.0 overflow
  EXPECT_DOUBLE_EQ(snap.mean(), 505.5 / 3.0);
}

TEST(HistogramTest, QuantilesTrackExactSort) {
  // Bucketed quantiles are estimates; with the default 1-2-5 bounds the
  // interpolated p50/p95/p99 must land within one bucket width of the
  // exact order statistics.
  Histogram hist(default_bounds());
  Rng rng(7);
  std::vector<double> values;
  values.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::exp(rng.uniform() * 8.0);  // spans many buckets
    values.push_back(v);
    hist.record(v);
  }
  std::sort(values.begin(), values.end());
  const auto exact = [&](double q) {
    return values[static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1))];
  };
  const auto snap = hist.snapshot();
  for (const auto& [estimate, q] :
       {std::pair{snap.p50, 0.50}, {snap.p95, 0.95}, {snap.p99, 0.99}}) {
    const double truth = exact(q);
    // 1-2-5 spacing: neighboring bounds are within a factor 2.5.
    EXPECT_GE(estimate, truth / 2.5) << "q=" << q;
    EXPECT_LE(estimate, truth * 2.5) << "q=" << q;
  }
  // Quantiles are clamped to the observed range.
  EXPECT_GE(snap.p50, snap.min);
  EXPECT_LE(snap.p99, snap.max);
}

TEST(HistogramTest, SingleValueQuantilesAreExact) {
  Histogram hist({1.0, 10.0});
  hist.record(3.0);
  const auto snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.p50, 3.0);
  EXPECT_DOUBLE_EQ(snap.p99, 3.0);
}

TEST(RegistryTest, ReferencesStableAcrossResetAndRehash) {
  Telemetry registry;
  Counter& counter = registry.counter("stable.counter");
  Gauge& gauge = registry.gauge("stable.gauge");
  counter.increment(5);
  gauge.set(1.25);
  // Force rehashing by registering many more metrics.
  for (int i = 0; i < 200; ++i) {
    registry.counter("filler." + std::to_string(i)).increment();
  }
  EXPECT_EQ(counter.value(), 5u);
  EXPECT_EQ(&registry.counter("stable.counter"), &counter);
  registry.reset();
  // reset() zeroes in place: the old references still work.
  EXPECT_EQ(counter.value(), 0u);
  counter.increment();
  EXPECT_EQ(registry.counter("stable.counter").value(), 1u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(RegistryTest, SnapshotSortsNamesAndCountsMetrics) {
  Telemetry registry;
  registry.counter("b.two").increment(2);
  registry.counter("a.one").increment(1);
  registry.gauge("c.three").set(3.0);
  registry.histogram("d.four").record(4.0);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.one");
  EXPECT_EQ(snap.counters[1].first, "b.two");
  EXPECT_EQ(snap.metric_count(), 4u);
  EXPECT_TRUE(snap.has_prefix("a."));
  EXPECT_TRUE(snap.has_prefix("d."));
  EXPECT_FALSE(snap.has_prefix("zzz."));
}

TEST(RegistryTest, ConcurrentAccessIsSafe) {
  // 4 threads hammer one shared counter/gauge/histogram plus per-thread
  // metrics (exercising concurrent creation).  Run under TSan in CI.
  Telemetry registry;
  constexpr int kThreads = 4;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIterations; ++i) {
        registry.counter("shared.counter").increment();
        registry.gauge("shared.gauge").set(static_cast<double>(i));
        registry.histogram("shared.hist").record(static_cast<double>(i));
        registry.counter("thread." + std::to_string(t)).increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("shared.counter").value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.histogram("shared.hist").snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kIterations);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("thread." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIterations));
  }
}

TEST(SnapshotTest, JsonRoundTripPreservesEverything) {
  Telemetry registry;
  registry.counter("iot.rounds").increment(3);
  registry.gauge("dp.epsilon_spent_total").set(0.12345678901234567);
  auto& hist = registry.histogram("market.sale_price");
  hist.record(10.0);
  hist.record(99.5);
  hist.record(1e6);

  const auto snap = registry.snapshot();
  const auto parsed = TelemetrySnapshot::from_json(snap.to_json());

  ASSERT_EQ(parsed.counters.size(), snap.counters.size());
  EXPECT_EQ(parsed.counters[0].first, "iot.rounds");
  EXPECT_EQ(parsed.counters[0].second, 3u);
  ASSERT_EQ(parsed.gauges.size(), 1u);
  // max_digits10 serialization: doubles survive bit-exactly.
  EXPECT_EQ(parsed.gauges[0].second, snap.gauges[0].second);
  ASSERT_EQ(parsed.histograms.size(), 1u);
  const auto& h0 = parsed.histograms[0];
  const auto& h1 = snap.histograms[0];
  EXPECT_EQ(h0.name, h1.name);
  EXPECT_EQ(h0.count, h1.count);
  EXPECT_EQ(h0.sum, h1.sum);
  EXPECT_EQ(h0.min, h1.min);
  EXPECT_EQ(h0.max, h1.max);
  EXPECT_EQ(h0.p50, h1.p50);
  EXPECT_EQ(h0.bounds, h1.bounds);
  EXPECT_EQ(h0.bucket_counts, h1.bucket_counts);
}

TEST(SnapshotTest, FromJsonRejectsMalformedInput) {
  EXPECT_THROW(TelemetrySnapshot::from_json(""), std::invalid_argument);
  EXPECT_THROW(TelemetrySnapshot::from_json("not json"),
               std::invalid_argument);
  EXPECT_THROW(TelemetrySnapshot::from_json("{\"counters\": ["),
               std::invalid_argument);
}

TEST(SnapshotTest, CsvHasOneRowPerScalar) {
  Telemetry registry;
  registry.counter("a.count").increment();
  registry.gauge("b.gauge").set(1.0);
  registry.histogram("c.hist").record(2.0);
  const std::string csv = registry.snapshot().to_csv();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,a.count,value,1"), std::string::npos);
  EXPECT_NE(csv.find("gauge,b.gauge,value,1"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c.hist,count,1"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c.hist,p99,"), std::string::npos);
}

TEST(ScopedTimerTest, RecordsElapsedMicroseconds) {
  Telemetry registry;
  auto& hist = registry.histogram("timer.us");
  { ScopedTimer timer(hist); }
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.min, 0.0);
  EXPECT_LT(snap.max, 1e6);  // an empty scope takes far less than a second
}

TEST(DefaultBoundsTest, StrictlyIncreasingAndWide) {
  const auto& bounds = default_bounds();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_LE(bounds.front(), 1e-6);
  EXPECT_GE(bounds.back(), 1e9);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

}  // namespace
}  // namespace prc::telemetry
