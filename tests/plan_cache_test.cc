// Plan-cache contract: hits replay the miss's plan bit-for-bit, perform no
// search work (no grid evaluations, no amplification calls), infeasible
// verdicts are cached like feasible ones, eviction is least-recently-used,
// and the cache stays coherent under concurrent hit/miss traffic.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/telemetry.h"
#include "dp/optimizer.h"
#include "dp/plan_cache.h"
#include "query/range_query.h"

namespace prc::dp {
namespace {

constexpr std::size_t kNodes = 8;
constexpr std::size_t kTotal = 17568;

std::uint64_t bits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

// Exact, bit-level equality: the determinism contract is "the same bytes
// the miss computed", not "approximately the same plan".
void expect_bit_identical(const PerturbationPlan& a, const PerturbationPlan& b) {
  EXPECT_EQ(bits(a.alpha), bits(b.alpha));
  EXPECT_EQ(bits(a.delta), bits(b.delta));
  EXPECT_EQ(bits(a.alpha_prime), bits(b.alpha_prime));
  EXPECT_EQ(bits(a.delta_prime), bits(b.delta_prime));
  EXPECT_EQ(bits(a.epsilon), bits(b.epsilon));
  EXPECT_EQ(bits(a.epsilon_amplified), bits(b.epsilon_amplified));
  EXPECT_EQ(bits(a.sensitivity), bits(b.sensitivity));
  EXPECT_EQ(bits(a.laplace_scale), bits(b.laplace_scale));
  EXPECT_EQ(bits(a.sampling_probability), bits(b.sampling_probability));
}

PlanCacheKey key_for(double alpha, double delta, double p) {
  return PlanCacheKey::make(alpha, delta, p, kNodes, kTotal, 0,
                            SensitivityPolicy::kExpected);
}

std::optional<PerturbationPlan> plan_for(double alpha, double delta, double p) {
  OptimizerConfig config;
  config.plan_cache_capacity = 0;
  return PerturbationOptimizer(config).optimize({alpha, delta}, p, kNodes,
                                                kTotal);
}

TEST(PlanCacheTest, HitIsBitIdenticalAndSkipsAllSearchWork) {
  const PerturbationOptimizer optimizer;  // default config: cache enabled
  const query::AccuracySpec spec{0.05, 0.8};
  const double p = 0.3;

  auto& hits = telemetry::counter("dp.plan_cache_hits");
  auto& misses = telemetry::counter("dp.plan_cache_misses");
  auto& grid = telemetry::counter("dp.grid_evaluations");
  auto& amplification = telemetry::counter("dp.amplification_calls");

  const auto hits0 = hits.value();
  const auto misses0 = misses.value();
  const auto first = optimizer.optimize(spec, p, kNodes, kTotal);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(misses.value(), misses0 + 1);
  EXPECT_EQ(hits.value(), hits0);

  const auto grid1 = grid.value();
  const auto amp1 = amplification.value();
  const auto second = optimizer.optimize(spec, p, kNodes, kTotal);
  ASSERT_TRUE(second.has_value());
  // The hit performs zero grid evaluations and zero amplification calls.
  EXPECT_EQ(grid.value(), grid1);
  EXPECT_EQ(amplification.value(), amp1);
  EXPECT_EQ(hits.value(), hits0 + 1);
  EXPECT_EQ(misses.value(), misses0 + 1);
  expect_bit_identical(*first, *second);
}

TEST(PlanCacheTest, DistinctArgumentsAreDistinctKeys) {
  const PerturbationOptimizer optimizer;
  auto& misses = telemetry::counter("dp.plan_cache_misses");
  const auto misses0 = misses.value();
  (void)optimizer.optimize({0.05, 0.8}, 0.3, kNodes, kTotal);
  (void)optimizer.optimize({0.05, 0.8}, 0.31, kNodes, kTotal);
  (void)optimizer.optimize({0.05, 0.81}, 0.3, kNodes, kTotal);
  (void)optimizer.optimize({0.05, 0.8}, 0.3, kNodes, kTotal + 1);
  EXPECT_EQ(misses.value(), misses0 + 4);
}

TEST(PlanCacheTest, InfeasibleVerdictIsCachedWithoutRecounting) {
  const PerturbationOptimizer optimizer;
  // p far below the Theorem 3.3 threshold: no feasible split exists.
  const query::AccuracySpec spec{0.01, 0.9};
  const double p = 0.001;

  auto& infeasible = telemetry::counter("dp.optimize_infeasible");
  auto& hits = telemetry::counter("dp.plan_cache_hits");

  const auto infeasible0 = infeasible.value();
  EXPECT_FALSE(optimizer.optimize(spec, p, kNodes, kTotal).has_value());
  EXPECT_EQ(infeasible.value(), infeasible0 + 1);

  // The replayed verdict is the cached one: infeasible is not re-counted.
  const auto hits1 = hits.value();
  EXPECT_FALSE(optimizer.optimize(spec, p, kNodes, kTotal).has_value());
  EXPECT_EQ(hits.value(), hits1 + 1);
  EXPECT_EQ(infeasible.value(), infeasible0 + 1);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  auto& evictions = telemetry::counter("dp.plan_cache_evictions");
  const auto evictions0 = evictions.value();

  const auto k1 = key_for(0.05, 0.8, 0.3);
  const auto k2 = key_for(0.06, 0.8, 0.3);
  const auto k3 = key_for(0.07, 0.8, 0.3);
  cache.put(k1, plan_for(0.05, 0.8, 0.3));
  cache.put(k2, plan_for(0.06, 0.8, 0.3));
  EXPECT_EQ(cache.size(), 2u);

  // Touch k1 so k2 becomes the LRU entry, then insert k3.
  EXPECT_TRUE(cache.lookup(k1).has_value());
  cache.put(k3, plan_for(0.07, 0.8, 0.3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(evictions.value(), evictions0 + 1);

  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());
}

TEST(PlanCacheTest, RacingPutKeepsTheIncumbent) {
  PlanCache cache(4);
  const auto k1 = key_for(0.05, 0.8, 0.3);
  const auto plan = plan_for(0.05, 0.8, 0.3);
  ASSERT_TRUE(plan.has_value());
  cache.put(k1, plan);
  // A second put for the same key (the losing racer) must not duplicate
  // the entry or replace the incumbent's bytes.
  cache.put(k1, plan);
  EXPECT_EQ(cache.size(), 1u);
  const auto cached = cache.lookup(k1);
  ASSERT_TRUE(cached.has_value());
  ASSERT_TRUE(cached->has_value());
  expect_bit_identical(**cached, *plan);
}

TEST(PlanCacheTest, CapacityZeroDisablesCaching) {
  PlanCache cache(0);
  const auto k1 = key_for(0.05, 0.8, 0.3);
  cache.put(k1, plan_for(0.05, 0.8, 0.3));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(k1).has_value());

  OptimizerConfig config;
  config.plan_cache_capacity = 0;
  const PerturbationOptimizer optimizer(config);
  auto& misses = telemetry::counter("dp.plan_cache_misses");
  const auto misses0 = misses.value();
  (void)optimizer.optimize({0.05, 0.8}, 0.3, kNodes, kTotal);
  (void)optimizer.optimize({0.05, 0.8}, 0.3, kNodes, kTotal);
  EXPECT_EQ(misses.value(), misses0 + 2);
}

// Run under TSan in CI: many threads hammer one shared optimizer with a
// small set of specs (guaranteed hit/miss races on every key) and each
// must observe exactly the plan the serial reference computes.
TEST(PlanCacheTest, ConcurrentHitsAndMissesStayBitIdentical) {
  const PerturbationOptimizer shared;
  const std::vector<query::AccuracySpec> specs{
      {0.05, 0.8}, {0.06, 0.7}, {0.08, 0.9}, {0.1, 0.5}};
  const double p = 0.3;

  std::vector<std::optional<PerturbationPlan>> reference;
  for (const auto& spec : specs) {
    reference.push_back(plan_for(spec.alpha, spec.delta, p));
    ASSERT_TRUE(reference.back().has_value());
  }

  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const auto& spec = specs[(t + i) % specs.size()];
        const auto plan = shared.optimize(spec, p, kNodes, kTotal);
        const auto& want = reference[(t + i) % specs.size()];
        // Bit-pattern equality IS the property under test: a cached plan
        // must replay the exact bytes the serial reference computed.
        if (!plan.has_value() ||
            bits(plan->epsilon_amplified) !=  // lint:allow float-eq
                bits(want->epsilon_amplified) ||
            bits(plan->alpha_prime) !=  // lint:allow float-eq
                bits(want->alpha_prime) ||
            bits(plan->laplace_scale) != bits(want->laplace_scale)) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace prc::dp
