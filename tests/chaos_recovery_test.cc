// Crash-point chaos harness: for every registered crash point along the
// sell path, crash mid-sale, recover from WAL + checkpoint, and prove the
// paper's accounting survives — recovered total_epsilon never under-counts
// what the mechanism actually released, budget conservation re-audits to
// ~zero, the Theorem 4.2 menu re-validates, sequence numbers stay
// monotonic over durable history, and orphans earn no revenue.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/crash_point.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "data/partition.h"
#include "iot/network.h"
#include "market/broker.h"
#include "market/wal.h"

namespace prc::market {
namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kTotal = 4000;
const query::RangeQuery kRange{100.5, 3000.5};
const query::AccuracySpec kSpec{0.1, 0.6};

std::vector<std::vector<double>> node_data() {
  std::vector<double> values(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) values[i] = static_cast<double>(i);
  Rng rng(3);
  return data::partition_values(values, kNodes,
                                data::PartitionStrategy::kRoundRobin, rng);
}

pricing::VarianceModel variance_model() {
  return pricing::VarianceModel(kTotal, kNodes);
}

std::unique_ptr<pricing::PricingFunction> safe_pricing() {
  return std::make_unique<pricing::InverseVariancePricing>(
      variance_model(), query::AccuracySpec{0.1, 0.5}, 100.0, 1.0);
}

std::unique_ptr<pricing::PricingFunction> steep_pricing() {
  return std::make_unique<pricing::InverseVariancePricing>(
      variance_model(), query::AccuracySpec{0.1, 0.5}, 100.0, 2.0);
}

std::string wal_path_for(const std::string& point) {
  std::string name = point;
  std::replace(name.begin(), name.end(), '.', '_');
  return ::testing::TempDir() + "prc_chaos_" + name + ".wal";
}

struct BrokerRig {
  explicit BrokerRig(BrokerConfig config = {},
                     std::unique_ptr<pricing::PricingFunction> pricing =
                         safe_pricing())
      : network(node_data()),
        counter(network),
        broker(counter, std::move(pricing), config) {}

  iot::FlatNetwork network;
  dp::PrivateRangeCounter counter;
  DataBroker broker;
};

BrokerConfig chaos_config() {
  BrokerConfig config;
  // Checkpoint after every commit so the checkpoint crash points sit on
  // the swept sale's path.
  config.wal_checkpoint_interval = 1;
  return config;
}

/// Every point the sell path must traverse; the discovery pass asserts the
/// registry saw them all, guarding against placement rot.
const std::vector<std::string>& expected_sell_points() {
  static const std::vector<std::string> points = {
      "broker.begin_sale", "wal.pre_intent",     "wal.post_intent",
      "dp.post_mint",      "broker.pre_record",  "broker.post_record",
      "wal.post_commit",   "wal.pre_checkpoint", "wal.post_checkpoint",
  };
  return points;
}

TEST(ChaosRecoveryTest, SweepEveryCrashPointNeverUndercountsEpsilon) {
  auto& registry = crashpoints::Registry::instance();
  registry.disarm_all();

  // Discovery pass: one clean WAL-enabled sale registers every sell-path
  // point (and recovery registers the compaction point).
  {
    const auto path = wal_path_for("discovery");
    std::remove(path.c_str());
    BrokerRig rig(chaos_config());
    rig.broker.attach_wal(path);
    rig.broker.sell("alice", kRange, kSpec);
    BrokerRig fresh;
    fresh.broker.recover_and_attach_wal(path, variance_model());
    std::remove(path.c_str());
  }
  const auto discovered = registry.names();
  for (const auto& expected : expected_sell_points()) {
    EXPECT_NE(std::find(discovered.begin(), discovered.end(), expected),
              discovered.end())
        << "crash point '" << expected << "' never registered — did the "
        << "sell path move?";
  }

  for (const auto& point : discovered) {
    if (point == "wal.pre_compact_rename") continue;  // recovery-side; below
    SCOPED_TRACE("crash point " + point);
    telemetry::Telemetry::registry().reset();
    registry.disarm_all();
    const auto path = wal_path_for(point);
    std::remove(path.c_str());

    double released = 0.0;
    double revenue_at_crash = 0.0;
    double first_price = 0.0;
    double second_price = 0.0;
    bool crashed = false;
    {
      BrokerRig rig(chaos_config());
      rig.broker.attach_wal(path);
      first_price = rig.broker.sell("alice", kRange, kSpec).price;
      second_price = rig.broker.quote(kSpec);
      registry.arm(point);
      try {
        rig.broker.sell("bob", kRange, kSpec);
      } catch (const crashpoints::SimulatedCrash&) {
        crashed = true;
      }
      registry.disarm_all();
      // Ground truth: everything LaplaceMechanism::perturb released in
      // this process, committed or not.
      // One ground-truth read per crash point, not a hot path.
      released = telemetry::gauge(  // lint:allow telemetry-lookup
          "dp.epsilon_spent_total").value();
      revenue_at_crash = rig.broker.ledger().total_revenue();
      // The rig dies here with whatever the WAL managed to flush.
    }
    EXPECT_TRUE(crashed) << "armed point never fired during the sale";

    BrokerRig fresh;
    const auto stats =
        fresh.broker.recover_and_attach_wal(path, variance_model());

    // THE invariant: recovery may over-count released budget, never
    // under-count it.
    EXPECT_GE(fresh.broker.ledger().total_epsilon().value() + 1e-12,
              released);
    // Conservation re-audits to fp-rounding of zero.
    EXPECT_LE(fresh.broker.ledger().conservation_discrepancy(),
              1e-9 * (1.0 + fresh.broker.ledger().total_epsilon().value() +
                      fresh.broker.ledger().total_revenue()));
    // Revenue consistency: only durable commits earn revenue — exactly the
    // first sale, plus the second iff its commit record hit the disk.
    const double recovered_revenue = fresh.broker.ledger().total_revenue();
    EXPECT_LE(recovered_revenue, revenue_at_crash + 1e-9);
    const bool matches_one = std::abs(recovered_revenue - first_price) < 1e-9;
    const bool matches_two =
        std::abs(recovered_revenue - (first_price + second_price)) < 1e-9;
    EXPECT_TRUE(matches_one || matches_two)
        << "recovered revenue " << recovered_revenue
        << " is neither one sale (" << first_price << ") nor two ("
        << first_price + second_price << ")";
    // Orphans never earn: budget can exceed the committed sales' epsilon,
    // revenue cannot exceed their prices.
    EXPECT_GE(fresh.broker.ledger().orphaned_epsilon().value(), 0.0);
    (void)stats;

    // The re-audited broker accepts new sales with monotonic sequences
    // over durable history.
    const auto durable_next = fresh.broker.ledger().snapshot().next_sequence;
    const auto receipt = fresh.broker.sell("carol", kRange, kSpec);
    EXPECT_EQ(receipt.transaction_id, durable_next);
    EXPECT_GE(receipt.transaction_id, 1u);  // after alice's durable sale
    std::remove(path.c_str());
  }
}

TEST(ChaosRecoveryTest, OrphanedIntentChargesExactlyTheMintedEpsilon) {
  // dp.post_mint is the canonical dangerous crash: budget spent, ledger
  // never updated.  The intent carries the FINAL plan's epsilon', so the
  // orphan charge equals the release exactly — no slack, no shortfall.
  auto& registry = crashpoints::Registry::instance();
  registry.disarm_all();
  telemetry::Telemetry::registry().reset();
  const auto path = wal_path_for("exact_orphan");
  std::remove(path.c_str());

  double released = 0.0;
  {
    BrokerRig rig(chaos_config());
    rig.broker.attach_wal(path);
    rig.broker.sell("alice", kRange, kSpec);
    const double before = telemetry::gauge("dp.epsilon_spent_total").value();
    registry.arm("dp.post_mint");
    EXPECT_THROW(rig.broker.sell("bob", kRange, kSpec),
                 crashpoints::SimulatedCrash);
    registry.disarm_all();
    released = telemetry::gauge("dp.epsilon_spent_total").value();
    EXPECT_GT(released, before);  // the crash happened after the mint
  }

  BrokerRig fresh;
  const auto stats =
      fresh.broker.recover_and_attach_wal(path, variance_model());
  EXPECT_EQ(stats.orphaned_intents, 1u);
  EXPECT_EQ(stats.committed_sales, 0u);  // sale 1 lives in the checkpoint
  EXPECT_NEAR(fresh.broker.ledger().total_epsilon().value(), released,
              1e-12 * (1.0 + released));
  EXPECT_DOUBLE_EQ(fresh.broker.ledger().orphaned_epsilon().value(),
                   stats.orphaned_epsilon);
  // The orphan counts against bob's cap accounting too.
  EXPECT_GT(fresh.broker.ledger().consumer_epsilon("bob").value(), 0.0);
  EXPECT_DOUBLE_EQ(fresh.broker.ledger().consumer_spend("bob"), 0.0);
  std::remove(path.c_str());
}

TEST(ChaosRecoveryTest, CrashDuringCompactionRenameRecoversCleanly) {
  auto& registry = crashpoints::Registry::instance();
  registry.disarm_all();
  const auto path = wal_path_for("compact_crash");
  std::remove(path.c_str());
  {
    BrokerRig rig(chaos_config());
    rig.broker.attach_wal(path);
    rig.broker.sell("alice", kRange, kSpec);
  }
  double epsilon_once = 0.0;
  {
    // Recovery itself dies right before the compaction rename: the
    // original log must still be intact.
    BrokerRig rig;
    registry.arm("wal.pre_compact_rename");
    EXPECT_THROW(rig.broker.recover_and_attach_wal(path, variance_model()),
                 crashpoints::SimulatedCrash);
    registry.disarm_all();
    epsilon_once = rig.broker.ledger().total_epsilon().value();
  }
  BrokerRig fresh;
  fresh.broker.recover_and_attach_wal(path, variance_model());
  EXPECT_DOUBLE_EQ(fresh.broker.ledger().total_epsilon().value(),
                   epsilon_once);
  EXPECT_NO_THROW(fresh.broker.sell("carol", kRange, kSpec));
  std::remove(path.c_str());
}

TEST(ChaosRecoveryTest, CorruptedTailIsTruncatedAndRecoveryProceeds) {
  auto& registry = crashpoints::Registry::instance();
  registry.disarm_all();
  const auto path = wal_path_for("corrupt_tail");
  std::remove(path.c_str());
  double epsilon_first = 0.0;
  {
    BrokerRig rig;  // default checkpoint interval: commits stay in the log
    rig.broker.attach_wal(path);
    rig.broker.sell("alice", kRange, kSpec);
    epsilon_first = rig.broker.ledger().total_epsilon().value();
    rig.broker.sell("bob", kRange, kSpec);
  }
  // Corrupt the last commit record's bytes (simulated tail damage).
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekg(0, std::ios::end);
    const auto size = static_cast<long>(file.tellg());
    file.seekp(size - 3, std::ios::beg);
    const char garbage = '\x5A';
    file.write(&garbage, 1);
  }
  BrokerRig fresh;
  const auto stats =
      fresh.broker.recover_and_attach_wal(path, variance_model());
  EXPECT_GT(stats.truncated_bytes, 0u);
  // Bob's commit was damaged, but his intent survives: the budget is still
  // charged (over-count-only), only the revenue is lost.
  EXPECT_GE(fresh.broker.ledger().total_epsilon().value(), epsilon_first);
  EXPECT_GT(fresh.broker.ledger().orphaned_epsilon().value(), 0.0);
  EXPECT_LE(fresh.broker.ledger().conservation_discrepancy(), 1e-9);
  std::remove(path.c_str());
}

TEST(ChaosRecoveryTest, RecoveryRefusesArbitrageableMenu) {
  auto& registry = crashpoints::Registry::instance();
  registry.disarm_all();
  const auto path = wal_path_for("steep_menu");
  std::remove(path.c_str());
  {
    BrokerRig rig(BrokerConfig{}, steep_pricing());
    rig.broker.attach_wal(path);
    rig.broker.sell("alice", kRange, kSpec);
  }
  // The q = 2 menu violates Theorem 4.2; recovery must refuse to reopen
  // the market behind it.
  BrokerRig fresh(BrokerConfig{}, steep_pricing());
  EXPECT_THROW(fresh.broker.recover_and_attach_wal(path, variance_model()),
               ContractViolation);
  // The refusal left the broker exactly as it was: nothing half-restored,
  // no WAL attached, no budget silently usable without durability.
  EXPECT_EQ(fresh.broker.ledger().transaction_count(), 0u);
  EXPECT_DOUBLE_EQ(fresh.broker.ledger().total_epsilon().value(), 0.0);
  EXPECT_EQ(fresh.broker.write_ahead_log(), nullptr);
  std::remove(path.c_str());
}

TEST(ChaosRecoveryTest, FailedRecoveryLeavesBrokerCleanAndRetryable) {
  // A WAL whose replay fails its audit (here: two commits claiming the
  // same sequence) must not leave the broker half-restored — the caller
  // fixes the log and retries recovery on the SAME broker.
  auto& registry = crashpoints::Registry::instance();
  registry.disarm_all();
  const auto path = wal_path_for("retryable");
  std::remove(path.c_str());
  wal::CommitRecord commit;
  commit.intent_sequence = 100;
  commit.transaction =
      Transaction{0, "alice", {0.0, 1.0}, {0.1, 0.5}, 10.0, 0.01};
  {
    auto log = wal::WriteAheadLog::open(path);
    log->append_commit(commit);
    log->append_commit(commit);  // duplicate sequence: replay audit fails
  }
  BrokerRig fresh;
  EXPECT_THROW(fresh.broker.recover_and_attach_wal(path, variance_model()),
               ContractViolation);
  EXPECT_EQ(fresh.broker.ledger().transaction_count(), 0u);
  EXPECT_DOUBLE_EQ(fresh.broker.ledger().total_epsilon().value(), 0.0);
  EXPECT_EQ(fresh.broker.write_ahead_log(), nullptr);

  // Repair the log (drop the duplicate) and retry on the same broker.
  std::remove(path.c_str());
  {
    auto log = wal::WriteAheadLog::open(path);
    log->append_commit(commit);
  }
  const auto stats =
      fresh.broker.recover_and_attach_wal(path, variance_model());
  EXPECT_EQ(stats.committed_sales, 1u);
  EXPECT_DOUBLE_EQ(fresh.broker.ledger().total_revenue(), 10.0);
  EXPECT_NO_THROW(fresh.broker.sell("carol", kRange, kSpec));
  std::remove(path.c_str());
}

TEST(ChaosRecoveryTest, RecoveryIsIdempotentAcrossRepeatedCrashes) {
  auto& registry = crashpoints::Registry::instance();
  registry.disarm_all();
  telemetry::Telemetry::registry().reset();
  const auto path = wal_path_for("idempotent");
  std::remove(path.c_str());
  {
    BrokerRig rig(chaos_config());
    rig.broker.attach_wal(path);
    rig.broker.sell("alice", kRange, kSpec);
    registry.arm("dp.post_mint");
    EXPECT_THROW(rig.broker.sell("bob", kRange, kSpec),
                 crashpoints::SimulatedCrash);
    registry.disarm_all();
  }
  double epsilon_once = 0.0;
  {
    BrokerRig fresh;
    fresh.broker.recover_and_attach_wal(path, variance_model());
    epsilon_once = fresh.broker.ledger().total_epsilon().value();
    // Die again immediately — no new sales, no clean shutdown.
  }
  BrokerRig again;
  again.broker.recover_and_attach_wal(path, variance_model());
  // Compaction during the first recovery absorbed the orphan into the
  // checkpoint: recovering twice charges it once, not twice.
  EXPECT_DOUBLE_EQ(again.broker.ledger().total_epsilon().value(),
                   epsilon_once);
  std::remove(path.c_str());
}

TEST(ChaosRecoveryTest, ConcurrentSalesCannotJointlyBreachCap) {
  // Regression for the quote/record race: the cap check and the ledger
  // append used to be separate critical sections, so two parallel sales
  // could both clear the check on the same headroom.  The reservation path
  // makes admission atomic; under TSan this test also proves the data-race
  // freedom of the path.
  BrokerConfig config;
  config.per_consumer_epsilon_cap = 0.02;
  BrokerRig rig(config);
  // Warm the cache so every sale's plan (and epsilon') is identical and
  // the projected reservation equals the minted spend.
  rig.broker.sell("warmup", kRange, kSpec);

  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 4;
  std::atomic<int> refusals{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        try {
          rig.broker.sell("alice", kRange, kSpec);
        } catch (const BudgetExceededError&) {
          refusals.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_GT(refusals.load(), 0);  // the cap actually bit
  EXPECT_LE(rig.broker.ledger().consumer_epsilon("alice").value(),
            config.per_consumer_epsilon_cap.value() * (1.0 + 1e-9));
  EXPECT_LE(rig.broker.ledger().conservation_discrepancy(), 1e-9);
}

}  // namespace
}  // namespace prc::market
