// A Raw value never converts out implicitly: flowing a pre-noise estimate
// into a double (and from there into telemetry or a receipt) must be a
// visible `.get()` that the no-raw-to-sink lint rule can track.
// expect-error-regex: cannot convert 'prc::units::Raw<double>' to 'double'
#include "common/units.h"

double misuse() {
  prc::units::Raw<double> raw(41.5);
  double leaked = raw;
  return leaked;
}
