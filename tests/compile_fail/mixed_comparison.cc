// Both operands decay to double, so without the deleted mixed-unit
// operators `epsilon < delta` would compile and be meaningless.
// expect-error-regex: deleted function .*operator<.*EpsilonTag.*DeltaTag
#include "common/units.h"

bool misuse() {
  prc::units::Epsilon epsilon = 0.5;
  prc::units::Delta delta = 0.9;
  return epsilon < delta;
}
