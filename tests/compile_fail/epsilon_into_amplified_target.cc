// Inverting the amplification needs the AMPLIFIED budget as input; handing
// it the base epsilon answers a different question with no warning.
// expect-error-regex: could not convert .*<prc::units::EpsilonTag>.* to 'Unit<prc::units::EffectiveEpsilonTag>'
#include "dp/amplification.h"

prc::units::Epsilon misuse() {
  prc::units::Epsilon base = 0.5;
  prc::units::Probability p = 0.5;
  return prc::dp::base_epsilon_for_amplified(base, p);
}
