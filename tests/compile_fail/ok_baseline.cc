// Positive control: the ALLOWED conversions, compiled with the same
// harness flags as the negative cases.  If this stops compiling, the
// harness is broken and every negative case is passing vacuously.
// expect-compile: ok
#include "dp/amplification.h"

#include "common/units.h"

double baseline() {
  // Doubles and literals flow into units implicitly; units read out as
  // doubles; same-unit arithmetic works.
  prc::units::Epsilon epsilon = 0.5;
  prc::units::Probability p = 0.5;
  const prc::units::EffectiveEpsilon amplified =
      prc::dp::amplified_epsilon(epsilon, p);
  const prc::units::Epsilon recovered =
      prc::dp::base_epsilon_for_amplified(amplified, p);
  prc::units::EffectiveEpsilon total = 0.0;
  total += amplified;

  // Raw reads out through a visible .get(); a default Released is zero.
  const prc::units::Raw<double> raw(41.5);
  const prc::units::Released<double> released;
  return raw.get() + released.value() + recovered.value() + total.value();
}
