# Compile-fail test driver.  Invoked per case by ctest as
#   cmake -DCASE_FILE=<case.cc> -DCXX_COMPILER=<c++> -DINCLUDE_DIR=<src>
#         -P run_case.cmake
#
# Negative cases must fail to compile AND emit a diagnostic matching every
# `// expect-error-regex:` line in the case file.  A case marked
# `// expect-compile: ok` is a positive control and must compile.
foreach(required_var CASE_FILE CXX_COMPILER INCLUDE_DIR)
  if(NOT DEFINED ${required_var})
    message(FATAL_ERROR "missing -D${required_var}=...")
  endif()
endforeach()

file(READ "${CASE_FILE}" case_contents)
string(FIND "${case_contents}" "// expect-compile: ok" ok_marker)

execute_process(
  COMMAND "${CXX_COMPILER}" -std=c++20 -fsyntax-only
          "-I${INCLUDE_DIR}" "${CASE_FILE}"
  RESULT_VARIABLE compile_rc
  OUTPUT_VARIABLE compile_out
  ERROR_VARIABLE compile_err)

if(NOT ok_marker EQUAL -1)
  # Positive control: the harness itself is broken if this stops compiling.
  if(NOT compile_rc EQUAL 0)
    message(FATAL_ERROR
        "positive control ${CASE_FILE} failed to compile — the harness "
        "(include path / compiler flags) is broken, so every negative case "
        "would fail vacuously:\n${compile_err}")
  endif()
  return()
endif()

if(compile_rc EQUAL 0)
  message(FATAL_ERROR
      "${CASE_FILE} COMPILED, but it exercises a conversion the unit type "
      "system must reject.  A type boundary was weakened (friend list "
      "widened, deleted operator removed, or constructor made public).")
endif()

string(REGEX MATCHALL "// expect-error-regex: [^\n]*" expect_lines
       "${case_contents}")
if(NOT expect_lines)
  message(FATAL_ERROR
      "${CASE_FILE} has no // expect-error-regex: line — a negative case "
      "must document the diagnostic it expects.")
endif()

foreach(line IN LISTS expect_lines)
  string(REGEX REPLACE "^// expect-error-regex: " "" pattern "${line}")
  if(NOT compile_err MATCHES "${pattern}")
    message(FATAL_ERROR
        "${CASE_FILE} failed to compile (good), but for the WRONG reason.\n"
        "expected diagnostic matching: ${pattern}\n"
        "actual compiler output:\n${compile_err}")
  endif()
endforeach()
