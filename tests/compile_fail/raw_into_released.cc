// The one-way door: Raw data cannot be relabeled as Released without
// passing through a DP mechanism.
// expect-error-regex: no matching function .*Released.*Raw<double>
#include "common/units.h"

prc::units::Released<double> misuse() {
  prc::units::Raw<double> raw(41.5);
  return prc::units::Released<double>(raw);
}
