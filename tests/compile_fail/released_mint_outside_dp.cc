// Only the DP mechanisms (the friend list in units.h) may mint a Released
// value.  If this case ever compiles, the friend boundary was widened or
// the constructor was made public — the single guarantee the taint system
// rests on.
// expect-error-regex: Released\(T\).* private within this context
#include "common/units.h"

prc::units::Released<double> misuse() {
  return prc::units::Released<double>(42.0);
}
