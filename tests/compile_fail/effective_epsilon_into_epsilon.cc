// Feeding the already-amplified budget back into the Lemma 3.4 formula
// would amplify twice and under-account every sale in the ledger.
// expect-error-regex: could not convert .*EffectiveEpsilonTag.* to 'Unit<prc::units::EpsilonTag>'
#include "dp/amplification.h"

prc::units::EffectiveEpsilon misuse() {
  prc::units::EffectiveEpsilon amplified = 0.3;
  prc::units::Probability p = 0.5;
  return prc::dp::amplified_epsilon(amplified, p);
}
