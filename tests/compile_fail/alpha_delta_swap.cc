// The classic (alpha, delta) contract swap: both live in (0, 1) and both
// compile as bare doubles, which is exactly why they are distinct units.
// expect-error-regex: from 'Unit<prc::units::DeltaTag>' to non-scalar type 'Unit<prc::units::AlphaTag>'
#include "common/units.h"

void misuse() {
  prc::units::Delta delta = 0.9;
  prc::units::Alpha alpha = delta;
  (void)alpha;
}
