// A contract confidence is not a privacy budget: initializing an Epsilon
// from a Delta would silently turn "90% confidence" into "0.9-DP".
// expect-error-regex: from 'Unit<prc::units::DeltaTag>' to non-scalar type 'Unit<prc::units::EpsilonTag>'
#include "common/units.h"

void misuse() {
  prc::units::Delta delta = 0.9;
  prc::units::Epsilon epsilon = delta;
  (void)epsilon;
}
