// alpha + delta has no unit; summing budgets with error bounds is always
// a bug, so the mixed-tag operator is deleted.
// expect-error-regex: deleted function .*operator\+.*AlphaTag.*DeltaTag
#include "common/units.h"

void misuse() {
  prc::units::Alpha alpha = 0.1;
  prc::units::Delta delta = 0.9;
  auto nonsense = alpha + delta;
  (void)nonsense;
}
