#include "dp/workload_answerer.h"
#include "iot/network.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "dp/amplification.h"

namespace prc::dp {
namespace {

std::vector<std::vector<double>> grid_node_data(std::size_t nodes,
                                                std::size_t per_node) {
  std::vector<std::vector<double>> data(nodes);
  double v = 0.0;
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = 0; j < per_node; ++j) data[i].push_back(v += 1.0);
  }
  return data;
}

std::vector<query::RangeQuery> workload() {
  return {{100.5, 900.5}, {1000.5, 3000.5}, {200.5, 3900.5}};
}

TEST(WorkloadAnswererTest, Validation) {
  iot::FlatNetwork network(grid_node_data(4, 1000));
  WorkloadAnswerer answerer;
  Rng rng(1);
  EXPECT_THROW(answerer.answer(network, {}, 1.0, BudgetSplit::kUniform, rng),
               std::invalid_argument);
  EXPECT_THROW(answerer.answer(network, workload(), 0.0,
                               BudgetSplit::kUniform, rng),
               std::invalid_argument);
  // No sampling round committed yet.
  EXPECT_THROW(answerer.answer(network, workload(), 1.0,
                               BudgetSplit::kUniform, rng),
               std::logic_error);
  network.ensure_sampling_probability(0.3);
  EXPECT_THROW(answerer.answer(network, workload(), 1.0,
                               BudgetSplit::kWeighted, rng, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(answerer.answer(network, workload(), 1.0,
                               BudgetSplit::kWeighted, rng, {1.0, -1.0, 2.0}),
               std::invalid_argument);
}

TEST(WorkloadAnswererTest, UniformSplitSharesBudgetEvenly) {
  iot::FlatNetwork network(grid_node_data(4, 1000));
  network.ensure_sampling_probability(0.3);
  WorkloadAnswerer answerer;
  Rng rng(2);
  const auto result = answerer.answer(network, workload(), 0.9,
                                      BudgetSplit::kUniform, rng);
  ASSERT_EQ(result.answers.size(), 3u);
  for (const auto& a : result.answers) {
    EXPECT_DOUBLE_EQ(a.epsilon, 0.3);
    EXPECT_NEAR(a.epsilon_amplified, amplified_epsilon(0.3, 0.3), 1e-12);
  }
  EXPECT_NEAR(result.total_epsilon, 0.9, 1e-12);
  EXPECT_NEAR(result.total_epsilon_amplified,
              3.0 * amplified_epsilon(0.3, 0.3), 1e-12);
}

TEST(WorkloadAnswererTest, WeightedSplitUsesCubeRootAllocation) {
  iot::FlatNetwork network(grid_node_data(4, 1000));
  network.ensure_sampling_probability(0.3);
  WorkloadAnswerer answerer;
  Rng rng(3);
  const std::vector<double> weights = {1.0, 8.0, 27.0};
  const auto result = answerer.answer(network, workload(), 1.2,
                                      BudgetSplit::kWeighted, rng, weights);
  // cbrt weights: 1, 2, 3 -> shares 1/6, 2/6, 3/6 of 1.2.
  EXPECT_NEAR(result.answers[0].epsilon, 0.2, 1e-12);
  EXPECT_NEAR(result.answers[1].epsilon, 0.4, 1e-12);
  EXPECT_NEAR(result.answers[2].epsilon, 0.6, 1e-12);
  EXPECT_NEAR(result.total_epsilon, 1.2, 1e-12);
}

TEST(WorkloadAnswererTest, WeightedBeatsUniformOnWeightedVariance) {
  // The allocation is the minimizer of sum w_i * Var_i; verify against the
  // uniform split analytically via the reported noise variances.
  iot::FlatNetwork network(grid_node_data(4, 1000));
  network.ensure_sampling_probability(0.3);
  WorkloadAnswerer answerer;
  Rng rng(4);
  const std::vector<double> weights = {1.0, 1.0, 25.0};
  const auto weighted = answerer.answer(network, workload(), 1.0,
                                        BudgetSplit::kWeighted, rng, weights);
  const auto uniform = answerer.answer(network, workload(), 1.0,
                                       BudgetSplit::kUniform, rng);
  double weighted_cost = 0.0, uniform_cost = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weighted_cost += weights[i] * weighted.answers[i].noise_variance;
    uniform_cost += weights[i] * uniform.answers[i].noise_variance;
  }
  EXPECT_LT(weighted_cost, uniform_cost);
}

TEST(WorkloadAnswererTest, AnswersAreAccurateAtGenerousBudget) {
  iot::FlatNetwork network(grid_node_data(4, 1000));
  network.ensure_sampling_probability(0.5);
  WorkloadAnswerer answerer;
  Rng rng(5);
  const auto result = answerer.answer(network, workload(), 30.0,
                                      BudgetSplit::kUniform, rng);
  const std::vector<double> truths = {800.0, 2000.0, 3700.0};
  for (std::size_t i = 0; i < truths.size(); ++i) {
    // Sampling sd ~ sqrt(8*4)/0.5 ~ 11; noise sd tiny at eps = 10.
    EXPECT_NEAR(result.answers[i].value, truths[i], 80.0) << i;
  }
}

TEST(WorkloadAnswererTest, CompositionMatchesSumOfParts) {
  iot::FlatNetwork network(grid_node_data(4, 1000));
  network.ensure_sampling_probability(0.3);
  WorkloadAnswerer answerer;
  Rng rng(6);
  const auto result = answerer.answer(network, workload(), 0.6,
                                      BudgetSplit::kWeighted, rng,
                                      {1.0, 2.0, 3.0});
  double sum_amplified = 0.0;
  for (const auto& a : result.answers) sum_amplified += a.epsilon_amplified;
  EXPECT_NEAR(result.total_epsilon_amplified, sum_amplified, 1e-12);
}

}  // namespace
}  // namespace prc::dp
