#include "iot/network.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "query/range_query.h"

namespace prc::iot {
namespace {

std::vector<std::vector<double>> grid_node_data(std::size_t nodes,
                                                std::size_t per_node) {
  std::vector<std::vector<double>> data(nodes);
  double v = 0.0;
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = 0; j < per_node; ++j) data[i].push_back(v += 1.0);
  }
  return data;
}

TEST(SensorNodeTest, RejectsMisroutedRequests) {
  SensorNode node(3, {1.0, 2.0}, Rng(1));
  EXPECT_THROW(node.handle(SampleRequest{4, 0.5}), std::invalid_argument);
}

TEST(SensorNodeTest, OfflineNodeReportsNothing) {
  SensorNode node(0, {1.0, 2.0, 3.0}, Rng(2));
  node.set_online(false);
  const auto report = node.handle(SampleRequest{0, 1.0});
  EXPECT_TRUE(report.new_samples.empty());
  EXPECT_EQ(report.data_count, 3u);
  node.set_online(true);
  const auto report2 = node.handle(SampleRequest{0, 1.0});
  EXPECT_EQ(report2.new_samples.size(), 3u);
}

TEST(BaseStationTest, RequiresAtLeastOneNode) {
  EXPECT_THROW(BaseStation(0), std::invalid_argument);
}

TEST(BaseStationTest, IngestTracksCounts) {
  BaseStation station(2);
  SampleReport report;
  report.node_id = 1;
  report.data_count = 50;
  report.new_samples = {{3.0, 3}, {7.0, 7}};
  station.ingest(report);
  EXPECT_EQ(station.total_data_count(), 50u);
  EXPECT_EQ(station.cached_sample_count(), 2u);
  EXPECT_THROW(station.ingest(SampleReport{5, 1, {}}), std::out_of_range);
}

TEST(BaseStationTest, RoundCommitRules) {
  BaseStation station(1);
  EXPECT_THROW(station.commit_round(0.0), std::invalid_argument);
  station.commit_round(0.5);
  EXPECT_THROW(station.commit_round(0.3), std::invalid_argument);
  station.commit_round(0.7);
  EXPECT_DOUBLE_EQ(station.sampling_probability(), 0.7);
}

TEST(BaseStationTest, EstimateRequiresCommittedRound) {
  BaseStation station(1);
  EXPECT_THROW(station.rank_counting_estimate({0.0, 1.0}), std::logic_error);
  EXPECT_THROW(station.basic_counting_estimate({0.0, 1.0}), std::logic_error);
}

TEST(FlatNetworkTest, ConstructionValidation) {
  EXPECT_THROW(FlatNetwork({}), std::invalid_argument);
  NetworkConfig bad;
  bad.frame_loss_probability = 1.0;
  EXPECT_THROW(FlatNetwork(grid_node_data(1, 5), bad), std::invalid_argument);
}

TEST(FlatNetworkTest, SamplingRoundPopulatesBaseStation) {
  FlatNetwork network(grid_node_data(4, 100));
  EXPECT_EQ(network.node_count(), 4u);
  EXPECT_EQ(network.total_data_count(), 400u);
  const std::size_t added = network.ensure_sampling_probability(0.25).new_samples;
  EXPECT_GT(added, 0u);
  EXPECT_EQ(network.base_station().cached_sample_count(), added);
  EXPECT_EQ(network.base_station().total_data_count(), 400u);
  EXPECT_DOUBLE_EQ(network.base_station().sampling_probability(), 0.25);
}

TEST(FlatNetworkTest, RepeatRoundsAreIncremental) {
  FlatNetwork network(grid_node_data(2, 500));
  const std::size_t first = network.ensure_sampling_probability(0.1).new_samples;
  const std::size_t again = network.ensure_sampling_probability(0.1).new_samples;
  EXPECT_EQ(again, 0u);  // same p: nothing new
  const std::size_t second = network.ensure_sampling_probability(0.3).new_samples;
  EXPECT_GT(second, 0u);
  EXPECT_EQ(network.base_station().cached_sample_count(), first + second);
}

TEST(FlatNetworkTest, CommunicationAccounting) {
  FlatNetwork network(grid_node_data(3, 200));
  const auto& before = network.stats();
  EXPECT_EQ(before.total_bytes(), 0u);
  network.ensure_sampling_probability(0.5);
  const auto& stats = network.stats();
  // One downlink request per node.
  EXPECT_EQ(stats.downlink_messages, 3u);
  EXPECT_EQ(stats.downlink_bytes,
            3u * (kMessageHeaderBytes + sizeof(double)));
  EXPECT_GT(stats.uplink_bytes, 0u);
  EXPECT_EQ(stats.retransmissions, 0u);  // lossless by default
  EXPECT_EQ(stats.samples_transferred,
            network.base_station().cached_sample_count());
}

TEST(FlatNetworkTest, SampleVolumeTracksExpectation) {
  // E[samples] = n * p; check within 5 sigma of binomial.
  FlatNetwork network(grid_node_data(5, 2000));
  const double p = 0.2;
  network.ensure_sampling_probability(p);
  const double n = 10000.0;
  const double sigma = std::sqrt(n * p * (1 - p));
  EXPECT_NEAR(static_cast<double>(network.stats().samples_transferred),
              n * p, 5.0 * sigma);
}

TEST(FlatNetworkTest, SmallReportsPiggybackOnHeartbeats) {
  // Tiny probability -> each node ships <= 16 samples -> all piggybacked.
  FlatNetwork network(grid_node_data(4, 100));
  network.ensure_sampling_probability(0.02);
  EXPECT_EQ(network.stats().piggybacked_reports, 4u);
}

TEST(FlatNetworkTest, LossCostsRetransmissions) {
  NetworkConfig lossy;
  lossy.frame_loss_probability = 0.4;
  lossy.seed = 5;
  FlatNetwork network(grid_node_data(4, 500), lossy);
  NetworkConfig clean;
  clean.seed = 5;
  FlatNetwork reference(grid_node_data(4, 500), clean);
  network.ensure_sampling_probability(0.3);
  reference.ensure_sampling_probability(0.3);
  EXPECT_GT(network.stats().retransmissions, 0u);
  EXPECT_GT(network.stats().total_bytes(), reference.stats().total_bytes());
  // Protocol state is still consistent despite loss.
  EXPECT_EQ(network.base_station().total_data_count(), 2000u);
}

TEST(FlatNetworkTest, EstimatesMatchGroundTruthClosely) {
  FlatNetwork network(grid_node_data(4, 2500));
  network.ensure_sampling_probability(0.4);
  const query::RangeQuery range{1000.5, 9000.5};
  const double truth = 8000.0;
  const double est = network.rank_counting_estimate(range);
  // Chebyshev 99%: within 10 * sqrt(8k/p^2).
  const double bound = 10.0 * std::sqrt(8.0 * 4.0 / (0.4 * 0.4));
  EXPECT_NEAR(est, truth, bound);
  const double basic = network.basic_counting_estimate(range);
  EXPECT_NEAR(basic, truth, 10.0 * std::sqrt(truth * 0.6 / 0.4));
}

TEST(FlatNetworkTest, DropoutExcludesNodeButKeepsOthers) {
  FlatNetwork network(grid_node_data(3, 100));
  network.set_node_online(1, false);
  network.ensure_sampling_probability(0.5);
  // Node 1 never reported: its n_i is unknown to the station.
  EXPECT_EQ(network.base_station().total_data_count(), 200u);
  // Re-join and top up: the node catches up.
  network.set_node_online(1, true);
  network.ensure_sampling_probability(0.6);
  EXPECT_EQ(network.base_station().total_data_count(), 300u);
}

TEST(FlatNetworkTest, ByteAccurateModeMatchesModelSizes) {
  // The byte-accurate network encodes every uplink report for real; with a
  // clean channel its uplink byte count must equal the loss-free model's,
  // minus the piggyback discount (byte mode always frames).
  NetworkConfig byte_mode;
  byte_mode.byte_accurate = true;
  byte_mode.seed = 3;
  NetworkConfig model_mode;
  model_mode.seed = 3;
  FlatNetwork a(grid_node_data(4, 800), byte_mode);
  FlatNetwork b(grid_node_data(4, 800), model_mode);
  a.ensure_sampling_probability(0.3);
  b.ensure_sampling_probability(0.3);
  // Same samples collected (same seeds), same estimates.
  EXPECT_EQ(a.base_station().cached_sample_count(),
            b.base_station().cached_sample_count());
  const query::RangeQuery range{100.5, 2000.5};
  EXPECT_DOUBLE_EQ(a.rank_counting_estimate(range),
                   b.rank_counting_estimate(range));
  // ~240 samples/node -> no piggybacking either way: byte counts agree.
  EXPECT_EQ(a.stats().uplink_bytes, b.stats().uplink_bytes);
  EXPECT_EQ(a.stats().corrupted_frames, 0u);
}

TEST(FlatNetworkTest, CorruptionIsDetectedAndRetransmitted) {
  NetworkConfig noisy;
  noisy.byte_accurate = true;
  noisy.bit_corruption_probability = 0.4;
  noisy.seed = 7;
  FlatNetwork network(grid_node_data(4, 1000), noisy);
  network.ensure_sampling_probability(0.4);
  // CRC caught corrupted frames and every one was retransmitted.
  EXPECT_GT(network.stats().corrupted_frames, 0u);
  EXPECT_GE(network.stats().retransmissions,
            network.stats().corrupted_frames);
  // Protocol state is uncorrupted: totals exact, estimates sane.
  EXPECT_EQ(network.base_station().total_data_count(), 4000u);
  EXPECT_DOUBLE_EQ(network.rank_counting_estimate({-1.0, 1e9}), 4000.0);
}

TEST(FlatNetworkTest, ByteAccurateResyncSurvivesCorruption) {
  NetworkConfig noisy;
  noisy.byte_accurate = true;
  noisy.bit_corruption_probability = 0.3;
  noisy.seed = 9;
  FlatNetwork network(grid_node_data(2, 500), noisy);
  network.ensure_sampling_probability(0.5);
  network.append_data(0, std::vector<double>(100, 9999.0));
  EXPECT_EQ(network.refresh_samples(), 1u);
  EXPECT_EQ(network.base_station().total_data_count(), 1100u);
  EXPECT_DOUBLE_EQ(network.rank_counting_estimate({-1e9, 1e9}), 1100.0);
}

TEST(FlatNetworkTest, RejectsInvalidCorruptionProbability) {
  NetworkConfig bad;
  bad.bit_corruption_probability = 1.0;
  EXPECT_THROW(FlatNetwork(grid_node_data(1, 5), bad),
               std::invalid_argument);
}

TEST(FlatNetworkTest, RejectsInvalidProbability) {
  FlatNetwork network(grid_node_data(1, 10));
  EXPECT_THROW(network.ensure_sampling_probability(0.0),
               std::invalid_argument);
  EXPECT_THROW(network.ensure_sampling_probability(1.0001),
               std::invalid_argument);
}

}  // namespace
}  // namespace prc::iot
