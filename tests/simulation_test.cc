#include "market/simulation.h"
#include "iot/network.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "common/rng.h"
#include "data/partition.h"
#include "dp/private_counting.h"

namespace prc::market {
namespace {

constexpr std::size_t kNodes = 8;
constexpr std::size_t kTotal = 20000;

struct SimFixture {
  SimFixture(double exponent, double cap)
      : network(make_nodes()),
        counter(network),
        broker(counter,
               std::make_unique<pricing::InverseVariancePricing>(
                   pricing::VarianceModel(kTotal, kNodes),
                   query::AccuracySpec{0.1, 0.5}, 100.0, exponent),
               BrokerConfig{cap}) {}

  static std::vector<std::vector<double>> make_nodes() {
    std::vector<double> values(kTotal);
    for (std::size_t i = 0; i < kTotal; ++i) {
      values[i] = static_cast<double>(i);
    }
    Rng rng(3);
    return data::partition_values(values, kNodes,
                                  data::PartitionStrategy::kRoundRobin, rng);
  }

  static std::vector<query::RangeQuery> pool() {
    return {{100.5, 5000.5}, {2000.5, 18000.5}, {9000.5, 12000.5}};
  }

  iot::FlatNetwork network;
  dp::PrivateRangeCounter counter;
  DataBroker broker;
};

constexpr double kNoCap = std::numeric_limits<double>::infinity();

TEST(MarketSimulationTest, Validation) {
  SimFixture fixture(1.0, kNoCap);
  const pricing::VarianceModel model(kTotal, kNodes);
  EXPECT_THROW(MarketSimulation(fixture.broker, model, {}),
               std::invalid_argument);
  SimulationConfig bad_rounds;
  bad_rounds.rounds = 0;
  EXPECT_THROW(
      MarketSimulation(fixture.broker, model, SimFixture::pool(), bad_rounds),
      std::invalid_argument);
  SimulationConfig bad_box;
  bad_box.alpha_min = 0.5;
  bad_box.alpha_max = 0.1;
  EXPECT_THROW(
      MarketSimulation(fixture.broker, model, SimFixture::pool(), bad_box),
      std::invalid_argument);
}

TEST(MarketSimulationTest, DeterministicForSameSeed) {
  SimulationConfig config;
  config.rounds = 10;
  config.seed = 77;
  SimFixture a(1.0, kNoCap);
  SimFixture b(1.0, kNoCap);
  const pricing::VarianceModel model(kTotal, kNodes);
  const auto ra =
      MarketSimulation(a.broker, model, SimFixture::pool(), config).run();
  const auto rb =
      MarketSimulation(b.broker, model, SimFixture::pool(), config).run();
  EXPECT_EQ(ra.honest_purchases, rb.honest_purchases);
  EXPECT_EQ(ra.attacker_targets, rb.attacker_targets);
  EXPECT_DOUBLE_EQ(ra.revenue, rb.revenue);
}

TEST(MarketSimulationTest, TheoremPricingEliminatesArbitrage) {
  SimulationConfig config;
  config.rounds = 15;
  config.seed = 5;
  SimFixture fixture(1.0, kNoCap);
  const pricing::VarianceModel model(kTotal, kNodes);
  const auto report =
      MarketSimulation(fixture.broker, model, SimFixture::pool(), config)
          .run();
  EXPECT_GT(report.honest_purchases, 0u);
  EXPECT_GT(report.attacker_targets, 0u);
  EXPECT_EQ(report.profitable_attacks, 0u);
  // Attackers forced honest: one query per acquisition, zero leakage.
  EXPECT_EQ(report.attacker_queries, report.attacker_targets);
  EXPECT_NEAR(report.arbitrage_leakage(), 0.0, 1e-6);
  // Revenue equals what the ledger recorded.
  EXPECT_DOUBLE_EQ(report.revenue,
                   fixture.broker.ledger().total_revenue());
}

TEST(MarketSimulationTest, SteepPricingLeaksRevenue) {
  SimulationConfig config;
  config.rounds = 15;
  config.seed = 5;
  SimFixture fixture(2.0, kNoCap);
  const pricing::VarianceModel model(kTotal, kNodes);
  const auto report =
      MarketSimulation(fixture.broker, model, SimFixture::pool(), config)
          .run();
  EXPECT_GT(report.profitable_attacks, 0u);
  EXPECT_GT(report.attacker_queries, report.attacker_targets);
  EXPECT_GT(report.arbitrage_leakage(), 0.0);
}

TEST(MarketSimulationTest, BudgetCapBoundsExposureAndRefuses) {
  SimulationConfig config;
  config.rounds = 40;
  config.seed = 9;
  const double cap = 0.015;
  SimFixture fixture(1.0, cap);
  const pricing::VarianceModel model(kTotal, kNodes);
  const auto report =
      MarketSimulation(fixture.broker, model, SimFixture::pool(), config)
          .run();
  EXPECT_GT(report.refused_sales, 0u);
  EXPECT_LE(report.max_honest_epsilon, cap);
  EXPECT_LE(report.max_attacker_epsilon, cap);
}

}  // namespace
}  // namespace prc::market
