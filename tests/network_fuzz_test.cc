// Model-based randomized test of the FlatNetwork protocol: a shadow model
// tracks what the base station should know after arbitrary interleavings of
// top-up rounds, appends, refreshes and dropouts, and a set of invariants
// is checked after every operation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "iot/network.h"
#include "query/range_query.h"

namespace prc {
namespace {

class NetworkFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFuzz, InvariantsHoldUnderRandomOperations) {
  Rng fuzz_rng(GetParam());
  const std::size_t k = 1 + static_cast<std::size_t>(fuzz_rng.uniform_int(1, 5));

  // Shadow model state.
  std::vector<std::size_t> model_counts(k);
  std::vector<bool> model_dirty(k, false);
  std::vector<bool> model_online(k, true);
  std::vector<std::size_t> station_counts(k, 0);  // n_i the station knows
  double model_p = 0.0;

  std::vector<std::vector<double>> initial(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto count = static_cast<std::size_t>(fuzz_rng.uniform_int(5, 200));
    model_counts[i] = count;
    for (std::size_t j = 0; j < count; ++j) {
      initial[i].push_back(fuzz_rng.uniform(0.0, 1000.0));
    }
  }
  iot::NetworkConfig config;
  config.seed = GetParam() * 13 + 1;
  config.frame_loss_probability = fuzz_rng.bernoulli(0.5) ? 0.2 : 0.0;
  iot::FlatNetwork network(initial, config);

  std::size_t last_bytes = 0;
  double last_p = 0.0;

  const auto check_invariants = [&] {
    // Probability and traffic are monotone.
    const double p = network.base_station().sampling_probability();
    ASSERT_GE(p, last_p);
    last_p = p;
    ASSERT_GE(network.stats().total_bytes(), last_bytes);
    last_bytes = network.stats().total_bytes();

    // The station's totals match the nodes it has heard from.
    std::size_t expected_station_total = 0;
    for (std::size_t i = 0; i < k; ++i) {
      expected_station_total += station_counts[i];
    }
    ASSERT_EQ(network.base_station().total_data_count(),
              expected_station_total);

    // Ground truth totals.
    std::size_t model_total = 0;
    for (auto c : model_counts) model_total += c;
    ASSERT_EQ(network.total_data_count(), model_total);

    // Sample cache never exceeds the data the station knows about.
    ASSERT_LE(network.base_station().cached_sample_count(),
              expected_station_total);

    // Full-domain queries are exact for the data the station knows about:
    // with no sampled predecessor/successor outside [-inf, +inf] the 4-case
    // estimator returns n_i for every node.
    if (p > 0.0) {
      const double estimate = network.rank_counting_estimate(
          query::RangeQuery{-1e18, 1e18});
      ASSERT_DOUBLE_EQ(estimate,
                       static_cast<double>(expected_station_total));
    }
  };

  const int operations = 120;
  for (int op = 0; op < operations; ++op) {
    switch (fuzz_rng.uniform_int(0, 4)) {
      case 0: {  // top-up round
        const double target =
            std::min(1.0, model_p + fuzz_rng.uniform(0.0, 0.3));
        if (target <= model_p) break;
        network.ensure_sampling_probability(target);
        model_p = target;
        // Every online node reports this round; dirty ones send a full
        // resync (new rank epoch), so their dirty flag clears too.
        for (std::size_t i = 0; i < k; ++i) {
          if (model_online[i]) {
            station_counts[i] = model_counts[i];
            model_dirty[i] = false;
          }
        }
        break;
      }
      case 1: {  // append data to a random node
        const auto node = static_cast<std::size_t>(
            fuzz_rng.uniform_int(0, static_cast<std::int64_t>(k) - 1));
        const auto extra =
            static_cast<std::size_t>(fuzz_rng.uniform_int(1, 50));
        std::vector<double> values;
        for (std::size_t j = 0; j < extra; ++j) {
          values.push_back(fuzz_rng.uniform(0.0, 1000.0));
        }
        network.append_data(node, values);
        model_counts[node] += extra;
        model_dirty[node] = true;
        break;
      }
      case 2: {  // refresh dirty nodes
        network.refresh_samples();
        for (std::size_t i = 0; i < k; ++i) {
          if (model_dirty[i] && model_online[i]) {
            model_dirty[i] = false;
            station_counts[i] = model_counts[i];
          }
        }
        break;
      }
      case 3: {  // toggle a node's connectivity
        const auto node = static_cast<std::size_t>(
            fuzz_rng.uniform_int(0, static_cast<std::int64_t>(k) - 1));
        model_online[node] = !model_online[node];
        network.set_node_online(node, model_online[node]);
        break;
      }
      case 4: {  // random range query (only checks it computes)
        if (model_p <= 0.0) break;
        double a = fuzz_rng.uniform(0.0, 1000.0);
        double b = fuzz_rng.uniform(0.0, 1000.0);
        if (a > b) std::swap(a, b);
        const double estimate =
            network.rank_counting_estimate(query::RangeQuery{a, b});
        ASSERT_TRUE(std::isfinite(estimate));
        break;
      }
    }
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace prc
