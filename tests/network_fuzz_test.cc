// Model-based randomized test of the FlatNetwork protocol: a shadow model
// tracks what the base station should know after arbitrary interleavings of
// top-up rounds, appends, refreshes and dropouts, and a set of invariants
// is checked after every operation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "estimator/accuracy.h"
#include "iot/network.h"
#include "query/range_query.h"

namespace prc {
namespace {

class NetworkFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFuzz, InvariantsHoldUnderRandomOperations) {
  Rng fuzz_rng(GetParam());
  const std::size_t k = 1 + static_cast<std::size_t>(fuzz_rng.uniform_int(1, 5));

  // Shadow model state.
  std::vector<std::size_t> model_counts(k);
  std::vector<bool> model_dirty(k, false);
  std::vector<bool> model_online(k, true);
  std::vector<std::size_t> station_counts(k, 0);  // n_i the station knows
  double model_p = 0.0;

  std::vector<std::vector<double>> initial(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto count = static_cast<std::size_t>(fuzz_rng.uniform_int(5, 200));
    model_counts[i] = count;
    for (std::size_t j = 0; j < count; ++j) {
      initial[i].push_back(fuzz_rng.uniform(0.0, 1000.0));
    }
  }
  iot::NetworkConfig config;
  config.seed = GetParam() * 13 + 1;
  config.frame_loss_probability = fuzz_rng.bernoulli(0.5) ? 0.2 : 0.0;
  iot::FlatNetwork network(initial, config);

  std::size_t last_bytes = 0;
  double last_p = 0.0;

  const auto check_invariants = [&] {
    // Probability and traffic are monotone.
    const double p = network.base_station().sampling_probability();
    ASSERT_GE(p, last_p);
    last_p = p;
    ASSERT_GE(network.stats().total_bytes(), last_bytes);
    last_bytes = network.stats().total_bytes();

    // The station's totals match the nodes it has heard from.
    std::size_t expected_station_total = 0;
    for (std::size_t i = 0; i < k; ++i) {
      expected_station_total += station_counts[i];
    }
    ASSERT_EQ(network.base_station().total_data_count(),
              expected_station_total);

    // Ground truth totals.
    std::size_t model_total = 0;
    for (auto c : model_counts) model_total += c;
    ASSERT_EQ(network.total_data_count(), model_total);

    // Sample cache never exceeds the data the station knows about.
    ASSERT_LE(network.base_station().cached_sample_count(),
              expected_station_total);

    // Full-domain queries are exact for the data the station knows about:
    // with no sampled predecessor/successor outside [-inf, +inf] the 4-case
    // estimator returns n_i for every node.
    if (p > 0.0) {
      const double estimate = network.rank_counting_estimate(
          query::RangeQuery{-1e18, 1e18});
      ASSERT_DOUBLE_EQ(estimate,
                       static_cast<double>(expected_station_total));
    }
  };

  const int operations = 120;
  for (int op = 0; op < operations; ++op) {
    switch (fuzz_rng.uniform_int(0, 4)) {
      case 0: {  // top-up round
        const double target =
            std::min(1.0, model_p + fuzz_rng.uniform(0.0, 0.3));
        if (target <= model_p) break;
        network.ensure_sampling_probability(target);
        model_p = target;
        // Every online node reports this round; dirty ones send a full
        // resync (new rank epoch), so their dirty flag clears too.
        for (std::size_t i = 0; i < k; ++i) {
          if (model_online[i]) {
            station_counts[i] = model_counts[i];
            model_dirty[i] = false;
          }
        }
        break;
      }
      case 1: {  // append data to a random node
        const auto node = static_cast<std::size_t>(
            fuzz_rng.uniform_int(0, static_cast<std::int64_t>(k) - 1));
        const auto extra =
            static_cast<std::size_t>(fuzz_rng.uniform_int(1, 50));
        std::vector<double> values;
        for (std::size_t j = 0; j < extra; ++j) {
          values.push_back(fuzz_rng.uniform(0.0, 1000.0));
        }
        network.append_data(node, values);
        model_counts[node] += extra;
        model_dirty[node] = true;
        break;
      }
      case 2: {  // refresh dirty nodes
        network.refresh_samples();
        for (std::size_t i = 0; i < k; ++i) {
          if (model_dirty[i] && model_online[i]) {
            model_dirty[i] = false;
            station_counts[i] = model_counts[i];
          }
        }
        break;
      }
      case 3: {  // toggle a node's connectivity
        const auto node = static_cast<std::size_t>(
            fuzz_rng.uniform_int(0, static_cast<std::int64_t>(k) - 1));
        model_online[node] = !model_online[node];
        network.set_node_online(node, model_online[node]);
        break;
      }
      case 4: {  // random range query (only checks it computes)
        if (model_p <= 0.0) break;
        double a = fuzz_rng.uniform(0.0, 1000.0);
        double b = fuzz_rng.uniform(0.0, 1000.0);
        if (a > b) std::swap(a, b);
        const double estimate =
            network.rank_counting_estimate(query::RangeQuery{a, b});
        ASSERT_TRUE(std::isfinite(estimate));
        break;
      }
    }
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Same shadow-model idea under an adversarial environment: random fault
// schedules (churn + bursty loss + duplication) and bounded retry budgets.
// The model no longer knows WHICH nodes a round reaches, so it reads the
// RoundReport outcomes — the exact contract the estimator and DP layers
// rely on — and checks that everything the report claims is consistent
// with the station's state.
class FaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFuzz, DegradedRoundsKeepEveryInvariant) {
  Rng fuzz_rng(GetParam() * 7919 + 17);
  const std::size_t k = 2 + static_cast<std::size_t>(fuzz_rng.uniform_int(0, 4));

  std::vector<std::vector<double>> model_data(k);
  std::vector<std::size_t> station_counts(k, 0);
  std::vector<bool> model_dirty(k, false);
  for (std::size_t i = 0; i < k; ++i) {
    const auto count = static_cast<std::size_t>(fuzz_rng.uniform_int(20, 200));
    for (std::size_t j = 0; j < count; ++j) {
      model_data[i].push_back(fuzz_rng.uniform(0.0, 1000.0));
    }
  }

  iot::NetworkConfig config;
  config.seed = GetParam() * 101 + 3;
  config.frame_loss_probability = fuzz_rng.bernoulli(0.5) ? 0.2 : 0.0;
  const std::size_t budgets[] = {1, 3, 0};  // 0 = unbounded
  config.max_attempts =
      budgets[static_cast<std::size_t>(fuzz_rng.uniform_int(0, 2))];
  config.faults.seed = GetParam() * 53 + 29;
  config.faults.crash_probability = fuzz_rng.uniform(0.05, 0.3);
  config.faults.rejoin_probability = 0.5;
  config.faults.good_to_bad = fuzz_rng.uniform(0.05, 0.3);
  config.faults.bad_to_good = 0.3;
  config.faults.loss_bad = 0.6;
  config.faults.duplication_probability = fuzz_rng.bernoulli(0.5) ? 0.1 : 0.0;
  iot::FlatNetwork network(model_data, config);

  std::size_t last_bytes = 0;
  double last_p = 0.0;
  std::vector<double> last_probs(k, 0.0);

  const auto check_invariants = [&] {
    const auto& stats = network.stats();
    // The frame ledger balances: every attempted frame either delivered or
    // was dropped after exhausting its budget.
    ASSERT_EQ(stats.frames_attempted,
              stats.frames_delivered + stats.dropped_frames);
    if (config.max_attempts == 0) {
      ASSERT_EQ(stats.dropped_frames, 0u);
    }

    const double p = network.base_station().sampling_probability();
    ASSERT_GE(p, last_p);
    last_p = p;
    ASSERT_GE(stats.total_bytes(), last_bytes);
    last_bytes = stats.total_bytes();

    // Per-node effective probabilities only ever move up, and never past
    // the committed round target.
    for (std::size_t i = 0; i < k; ++i) {
      const double p_i = network.base_station().node_probability(i);
      ASSERT_GE(p_i, last_probs[i]);
      ASSERT_LE(p_i, p);
      last_probs[i] = p_i;
    }

    std::size_t expected_station_total = 0;
    for (auto c : station_counts) expected_station_total += c;
    ASSERT_EQ(network.base_station().total_data_count(),
              expected_station_total);

    // Full-domain queries are exact regardless of degradation: the 4-case
    // estimator returns n_i for every known node and p never enters.
    if (p > 0.0) {
      const double estimate =
          network.rank_counting_estimate(query::RangeQuery{-1e18, 1e18});
      ASSERT_DOUBLE_EQ(estimate, static_cast<double>(expected_station_total));
    }
  };

  const int operations = 80;
  double model_p = 0.0;
  for (int op = 0; op < operations; ++op) {
    switch (fuzz_rng.uniform_int(0, 2)) {
      case 0: {  // top-up round; the report says who made it
        const double target =
            std::min(1.0, model_p + fuzz_rng.uniform(0.05, 0.3));
        if (target <= model_p) break;
        const auto report = network.ensure_sampling_probability(target);
        model_p = target;
        ASSERT_EQ(report.outcomes.size(), k);
        for (std::size_t i = 0; i < k; ++i) {
          if (report.outcomes[i] == iot::NodeOutcome::kDelivered) {
            station_counts[i] = model_data[i].size();
            model_dirty[i] = false;
          }
        }
        break;
      }
      case 1: {  // append data to a random node
        const auto node = static_cast<std::size_t>(
            fuzz_rng.uniform_int(0, static_cast<std::int64_t>(k) - 1));
        const auto extra =
            static_cast<std::size_t>(fuzz_rng.uniform_int(1, 40));
        std::vector<double> values;
        for (std::size_t j = 0; j < extra; ++j) {
          values.push_back(fuzz_rng.uniform(0.0, 1000.0));
        }
        network.append_data(node, values);
        for (const double v : values) model_data[node].push_back(v);
        model_dirty[node] = true;
        break;
      }
      case 2: {  // random range query against ground truth
        if (model_p <= 0.0) break;
        double a = fuzz_rng.uniform(0.0, 1000.0);
        double b = fuzz_rng.uniform(0.0, 1000.0);
        if (a > b) std::swap(a, b);
        const double estimate =
            network.rank_counting_estimate(query::RangeQuery{a, b});
        ASSERT_TRUE(std::isfinite(estimate));
        // When the cache is in sync with every node (everyone reported,
        // nothing dirty), the heterogeneous Chebyshev bound applies to the
        // true count.  99.9% per check is loose enough to be deterministic
        // in practice (the estimator is far inside the bound).
        const auto probs = network.base_station().node_probabilities();
        bool in_sync = true;
        for (std::size_t i = 0; i < k; ++i) {
          in_sync = in_sync && !model_dirty[i] && probs[i] > 0.0 &&
                    station_counts[i] == model_data[i].size();
        }
        if (in_sync) {
          std::size_t truth = 0;
          for (const auto& values : model_data) {
            for (const double v : values) {
              if (v >= a && v <= b) ++truth;
            }
          }
          const double bound =
              estimator::heterogeneous_error_bound(probs, 0.999);
          ASSERT_NEAR(estimate, static_cast<double>(truth), bound);
        }
        break;
      }
    }
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace prc
