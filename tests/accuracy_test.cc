#include "estimator/accuracy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/partition.h"
#include "estimator/rank_counting.h"
#include "sampling/local_sampler.h"

namespace prc::estimator {
namespace {

TEST(AccuracyTest, RequiredProbabilityFormula) {
  const query::AccuracySpec spec{0.1, 0.75};
  const std::size_t k = 8, n = 10000;
  const double expected = (std::sqrt(2.0 * 8.0) / (0.1 * 10000.0)) * 2.0 /
                          std::sqrt(1.0 - 0.75);
  EXPECT_NEAR(required_sampling_probability(spec, k, n), expected, 1e-12);
}

TEST(AccuracyTest, RequiredProbabilityMonotonicity) {
  const std::size_t k = 10, n = 100000;
  // Stricter alpha -> more samples.
  EXPECT_GT(required_sampling_probability({0.01, 0.5}, k, n),
            required_sampling_probability({0.05, 0.5}, k, n));
  // Stricter delta -> more samples.
  EXPECT_GT(required_sampling_probability({0.05, 0.9}, k, n),
            required_sampling_probability({0.05, 0.5}, k, n));
  // More nodes -> more samples (variance grows with k).
  EXPECT_GT(required_sampling_probability({0.05, 0.5}, 40, n),
            required_sampling_probability({0.05, 0.5}, 10, n));
  // Bigger data -> smaller probability suffices.
  EXPECT_LT(required_sampling_probability({0.05, 0.5}, k, 10 * n),
            required_sampling_probability({0.05, 0.5}, k, n));
}

TEST(AccuracyTest, RequiredProbabilityRejectsBadInput) {
  EXPECT_THROW(required_sampling_probability({0.1, 0.5}, 0, 100),
               std::invalid_argument);
  EXPECT_THROW(required_sampling_probability({0.1, 0.5}, 5, 0),
               std::invalid_argument);
  EXPECT_THROW(required_sampling_probability({0.0, 0.5}, 5, 100),
               std::invalid_argument);
}

TEST(AccuracyTest, AchievedDeltaInvertsRequiredProbability) {
  const query::AccuracySpec spec{0.08, 0.6};
  const std::size_t k = 12, n = 50000;
  const double p = required_sampling_probability(spec, k, n);
  // Sampling at exactly the required probability achieves exactly delta at
  // error level alpha.
  EXPECT_NEAR(achieved_delta(p, spec.alpha, k, n), spec.delta, 1e-9);
}

TEST(AccuracyTest, MinFeasibleAlphaInvertsAchievedDelta) {
  const double p = 0.23;
  const std::size_t k = 7, n = 20000;
  const double delta = 0.8;
  const double alpha = min_feasible_alpha(p, delta, k, n);
  EXPECT_NEAR(achieved_delta(p, alpha, k, n), delta, 1e-9);
  // Larger alpha -> higher confidence.
  EXPECT_GT(achieved_delta(p, alpha * 2.0, k, n), delta);
  // Smaller alpha -> infeasible (below delta).
  EXPECT_LT(achieved_delta(p, alpha * 0.5, k, n), delta);
}

TEST(AccuracyTest, AchievedDeltaCanBeNegative) {
  // Chebyshev bound vacuous: tiny alpha at low p.
  EXPECT_LT(achieved_delta(0.01, 0.001, 10, 1000), 0.0);
}

TEST(AccuracyTest, ArgumentValidation) {
  EXPECT_THROW(achieved_delta(0.0, 0.1, 5, 100), std::invalid_argument);
  EXPECT_THROW(achieved_delta(0.5, 0.0, 5, 100), std::invalid_argument);
  EXPECT_THROW(achieved_delta(0.5, 0.1, 5, 0), std::invalid_argument);
  EXPECT_THROW(min_feasible_alpha(0.5, 1.0, 5, 100), std::invalid_argument);
  EXPECT_THROW(min_feasible_alpha(1.5, 0.5, 5, 100), std::invalid_argument);
}

TEST(AccuracyTest, BasicCountingRequiredProbability) {
  // p >= 1/(1 + alpha^2 n (1-delta)); check the closed form and that the
  // resulting worst-case variance meets the Chebyshev budget with equality.
  const query::AccuracySpec spec{0.05, 0.8};
  const std::size_t n = 17568;
  const double p = basic_counting_required_probability(spec, n);
  EXPECT_NEAR(p, 1.0 / (1.0 + 0.0025 * 17568.0 * 0.2), 1e-12);
  const double worst_variance = static_cast<double>(n) * (1.0 - p) / p;
  const double budget = (spec.alpha * n) * (spec.alpha * n) *
                        (1.0 - spec.delta);
  EXPECT_NEAR(worst_variance, budget, budget * 1e-9);
  EXPECT_THROW(basic_counting_required_probability(spec, 0),
               std::invalid_argument);
}

TEST(AccuracyTest, SampleVolumeScalesLinearlyVsQuadraticallyInAccuracy) {
  // The true §III-A separation is in the accuracy exponent: for large n
  // both estimators need an n-independent sample VOLUME, but RankCounting's
  // grows as 1/alpha while BasicCounting's grows as 1/alpha^2.  Halving
  // alpha therefore doubles one bill and quadruples the other.
  const std::size_t n = 10000000;  // deep in the asymptotic regime
  const std::size_t k = 8;
  const double delta = 0.8;
  const auto volume_rank = [&](double alpha) {
    return required_sampling_probability({alpha, delta}, k, n) *
           static_cast<double>(n);
  };
  const auto volume_basic = [&](double alpha) {
    return basic_counting_required_probability({alpha, delta}, n) *
           static_cast<double>(n);
  };
  EXPECT_NEAR(volume_rank(0.01) / volume_rank(0.02), 2.0, 0.01);
  EXPECT_NEAR(volume_basic(0.01) / volume_basic(0.02), 4.0, 0.05);
  // At large n the probability ratio converges to the constant
  // 1 / (alpha * sqrt(8k (1 - delta))).
  const double alpha = 0.02;
  const double ratio = basic_counting_required_probability({alpha, delta}, n) /
                       required_sampling_probability({alpha, delta}, k, n);
  EXPECT_NEAR(ratio,
              1.0 / (alpha * std::sqrt(8.0 * static_cast<double>(k) *
                                       (1.0 - delta))),
              0.5);
  // At small n the basic requirement saturates toward collecting
  // everything while RankCounting stays cheap.
  EXPECT_GT(basic_counting_required_probability({0.01, 0.9}, 10000), 0.9);
  EXPECT_LT(required_sampling_probability({0.01, 0.9}, k, 10000), 0.3);
}

// Theorem 3.3 end-to-end: sampling at the required p yields an estimate
// within alpha*n of the truth in at least a delta fraction of trials.
struct ContractCase {
  double alpha;
  double delta;
};

class ContractMonteCarlo : public ::testing::TestWithParam<ContractCase> {};

TEST_P(ContractMonteCarlo, GuaranteeHolds) {
  const auto [alpha, delta] = GetParam();
  const std::size_t k = 4;
  const std::size_t n = 4000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i);
  Rng part_rng(5);
  const auto node_values = data::partition_values(
      values, k, data::PartitionStrategy::kRoundRobin, part_rng);

  const query::AccuracySpec spec{alpha, delta};
  const double p =
      std::min(1.0, required_sampling_probability(spec, k, n));
  const query::RangeQuery range{n * 0.2 + 0.5, n * 0.7 + 0.5};
  double truth = 0.0;
  for (double v : values) {
    if (range.contains(v)) truth += 1.0;
  }

  Rng rng(1234);
  const int trials = 2000;
  int within = 0;
  for (int t = 0; t < trials; ++t) {
    double estimate = 0.0;
    for (const auto& node : node_values) {
      sampling::LocalSampler sampler(node);
      sampler.raise_probability(p, rng);
      estimate += rank_counting_node_estimate(sampler.current_sample(),
                                              node.size(), p, range);
    }
    if (std::abs(estimate - truth) <= alpha * static_cast<double>(n)) {
      ++within;
    }
  }
  // Allow 3-sigma binomial slack below delta.
  const double margin =
      3.0 * std::sqrt(delta * (1.0 - delta) / trials);
  EXPECT_GE(static_cast<double>(within) / trials, delta - margin)
      << "alpha=" << alpha << " delta=" << delta << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    SpecSweep, ContractMonteCarlo,
    ::testing::Values(ContractCase{0.05, 0.5}, ContractCase{0.05, 0.9},
                      ContractCase{0.10, 0.7}, ContractCase{0.20, 0.8},
                      ContractCase{0.15, 0.95}),
    [](const ::testing::TestParamInfo<ContractCase>& case_info) {
      return "a" + std::to_string(static_cast<int>(case_info.param.alpha * 100)) +
             "_d" + std::to_string(static_cast<int>(case_info.param.delta * 100));
    });

}  // namespace
}  // namespace prc::estimator
