// Property sweep for the perturbation optimizer: every plan produced over a
// (contract x probability) grid must satisfy the full constraint system of
// paper problem (3), and the composed pipeline must meet the contract
// empirically at a spot-checked subset.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/distributions.h"
#include "common/rng.h"
#include "dp/amplification.h"
#include "dp/optimizer.h"
#include "estimator/accuracy.h"

namespace prc::dp {
namespace {

constexpr std::size_t kNodes = 8;
constexpr std::size_t kTotal = 17568;

struct GridCase {
  double alpha;
  double delta;
  double p;
};

class OptimizerGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(OptimizerGrid, PlanSatisfiesProblem3Constraints) {
  const auto [alpha, delta, p] = GetParam();
  const query::AccuracySpec spec{alpha, delta};
  const PerturbationOptimizer optimizer;
  const auto plan = optimizer.optimize(spec, p, kNodes, kTotal);

  const double p_required =
      estimator::required_sampling_probability(spec, kNodes, kTotal);
  if (p < p_required) {
    // Below the Theorem 3.3 threshold the search space is empty.
    EXPECT_FALSE(plan.has_value())
        << "p=" << p << " < required " << p_required;
    return;
  }
  ASSERT_TRUE(plan.has_value()) << "p=" << p << " spec=" << spec.to_string();

  // Constraint 1: p >= sqrt(2k)/(alpha' n) * 2/sqrt(1 - delta') — i.e. the
  // cached samples really deliver (alpha', delta').
  const double required_for_prime = estimator::required_sampling_probability(
      {plan->alpha_prime, plan->delta_prime}, kNodes, kTotal);
  EXPECT_GE(p, required_for_prime * (1.0 - 1e-9));

  // Constraint 2/3: alpha' <= alpha, delta <= delta'.
  EXPECT_LE(plan->alpha_prime, spec.alpha);
  EXPECT_GE(plan->delta_prime, spec.delta);

  // Constraint 4: Pr[|Lap| <= (alpha - alpha') n] >= delta / delta'.
  const Laplace noise(plan->laplace_scale);
  const double tail = noise.central_probability(
      (spec.alpha - plan->alpha_prime) * static_cast<double>(kTotal));
  EXPECT_GE(tail, spec.delta / plan->delta_prime - 1e-9);

  // Constraint 5 and the objective relation.
  EXPECT_GT(plan->epsilon, 0.0);
  EXPECT_NEAR(plan->epsilon_amplified, amplified_epsilon(plan->epsilon, p),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ContractProbabilityGrid, OptimizerGrid,
    ::testing::Values(
        GridCase{0.02, 0.5, 0.05}, GridCase{0.02, 0.5, 0.2},
        GridCase{0.02, 0.9, 0.05}, GridCase{0.02, 0.9, 0.4},
        GridCase{0.05, 0.6, 0.01}, GridCase{0.05, 0.6, 0.1},
        GridCase{0.05, 0.95, 0.3}, GridCase{0.10, 0.5, 0.005},
        GridCase{0.10, 0.8, 0.05}, GridCase{0.10, 0.8, 0.8},
        GridCase{0.20, 0.7, 0.02}, GridCase{0.20, 0.7, 1.0},
        GridCase{0.01, 0.9, 0.001},  // infeasible: below threshold
        GridCase{0.30, 0.4, 0.01}),
    [](const ::testing::TestParamInfo<GridCase>& case_info) {
      const auto& c = case_info.param;
      return "a" + std::to_string(static_cast<int>(c.alpha * 1000)) + "_d" +
             std::to_string(static_cast<int>(c.delta * 100)) + "_p" +
             std::to_string(static_cast<int>(c.p * 1000));
    });

// The optimizer's plan, executed with real Laplace noise on a perfect
// (alpha', delta')-accurate intermediate, meets the customer contract.
// Uses a synthetic intermediate with exactly the promised accuracy so the
// test isolates the noise-phase math from the sampling phase (covered
// elsewhere).
TEST(OptimizerPipelineTest, NoiseSplitHonorsContractOnSyntheticIntermediate) {
  const query::AccuracySpec spec{0.05, 0.8};
  const double p = 0.3;
  const PerturbationOptimizer optimizer;
  const auto plan = optimizer.optimize(spec, p, kNodes, kTotal);
  ASSERT_TRUE(plan.has_value());

  Rng rng(321);
  const double truth = 9000.0;
  const double n = static_cast<double>(kTotal);
  const Laplace noise(plan->laplace_scale);
  // Intermediate error: uniform on [-a'n, a'n] with prob delta', else a
  // large excursion (worst case allowed by the (alpha',delta') contract).
  int within = 0;
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    double intermediate;
    if (rng.bernoulli(plan->delta_prime)) {
      intermediate = truth + rng.uniform(-plan->alpha_prime * n,
                                         plan->alpha_prime * n);
    } else {
      intermediate = truth + 3.0 * spec.alpha * n;  // a miss
    }
    const double released = intermediate + noise.sample(rng);
    if (std::abs(released - truth) <= spec.alpha * n) ++within;
  }
  const double margin =
      3.0 * std::sqrt(spec.delta * (1.0 - spec.delta) / trials);
  EXPECT_GE(static_cast<double>(within) / trials, spec.delta - margin);
}

// End-to-end contract under the *worst-case* sensitivity policy: the plan
// reserves enough headroom that even the inflated noise keeps the contract.
TEST(OptimizerPipelineTest, WorstCasePolicyStillMeetsContract) {
  OptimizerConfig config;
  config.sensitivity_policy = SensitivityPolicy::kWorstCase;
  const PerturbationOptimizer optimizer(config);
  const query::AccuracySpec spec{0.10, 0.7};
  const double p = 0.3;
  const std::size_t max_ni = kTotal / kNodes;
  const auto plan = optimizer.optimize(spec, p, kNodes, kTotal, max_ni);
  ASSERT_TRUE(plan.has_value());
  const Laplace noise(plan->laplace_scale);
  const double tail = noise.central_probability(
      (spec.alpha - plan->alpha_prime) * static_cast<double>(kTotal));
  EXPECT_GE(tail, spec.delta / plan->delta_prime - 1e-9);
  // The worst-case scale is n_i/(p-normalized) times larger than expected.
  EXPECT_GT(plan->laplace_scale, 100.0);
}

}  // namespace
}  // namespace prc::dp
