#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace prc {
namespace {

TEST(RunningStatsTest, EmptyAccumulator) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.add(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 4.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 4.5);
  EXPECT_EQ(stats.max(), 4.5);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> values = {1.0, 2.5, -3.0, 7.25, 0.0, 4.0};
  RunningStats stats;
  for (double v : values) stats.add(v);

  double m = 0.0;
  for (double v : values) m += v;
  m /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - m) * (v - m);
  var /= static_cast<double>(values.size());

  EXPECT_NEAR(stats.mean(), m, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_EQ(stats.min(), -3.0);
  EXPECT_EQ(stats.max(), 7.25);
}

TEST(RunningStatsTest, SampleVarianceUsesBesselCorrection) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  EXPECT_NEAR(stats.variance(), 1.0, 1e-12);         // population
  EXPECT_NEAR(stats.sample_variance(), 2.0, 1e-12);  // n-1
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(77);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5, 5);
    all.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(2.0);
  a.merge(b);  // empty rhs
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, NumericallyStableOnLargeOffsets) {
  RunningStats stats;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) stats.add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(stats.mean(), offset, 1e-3);
  EXPECT_NEAR(stats.variance(), 1.0, 1e-6);
}

TEST(QuantileTest, KnownValues) {
  const std::vector<double> v = {3.0, 1.0, 2.0, 4.0, 5.0};
  EXPECT_EQ(quantile(v, 0.0), 1.0);
  EXPECT_EQ(quantile(v, 1.0), 5.0);
  EXPECT_EQ(quantile(v, 0.5), 3.0);
  EXPECT_NEAR(quantile(v, 0.25), 2.0, 1e-12);
  EXPECT_NEAR(quantile(v, 0.125), 1.5, 1e-12);  // interpolated
}

TEST(QuantileTest, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> v = {1.0};
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
}

TEST(BatchHelpersTest, MeanVarianceMaxAbs) {
  const std::vector<double> v = {-4.0, 2.0, 2.0};
  EXPECT_NEAR(mean(v), 0.0, 1e-12);
  EXPECT_NEAR(variance(v), 8.0, 1e-12);
  EXPECT_EQ(max_abs(v), 4.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(variance({}), std::invalid_argument);
  EXPECT_THROW(max_abs({}), std::invalid_argument);
}

TEST(ChebyshevTest, ConfidenceAndDeviationAreInverses) {
  const double var = 4.0;
  for (double conf : {0.0, 0.5, 0.9, 0.99}) {
    const double t = chebyshev_deviation(var, conf);
    EXPECT_NEAR(chebyshev_confidence(var, t), conf, 1e-9);
  }
}

TEST(ChebyshevTest, ConfidenceClampsToUnitInterval) {
  EXPECT_EQ(chebyshev_confidence(100.0, 1.0), 0.0);  // vacuous bound
  EXPECT_NEAR(chebyshev_confidence(1.0, 100.0), 1.0 - 1e-4, 1e-9);
  EXPECT_EQ(chebyshev_confidence(1.0, 0.0), 0.0);
}

TEST(ChebyshevTest, DeviationRejectsBadInput) {
  EXPECT_THROW(chebyshev_deviation(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(chebyshev_deviation(-1.0, 0.5), std::invalid_argument);
}

// The Chebyshev guarantee that underpins Theorem 3.3, checked empirically on
// a concrete distribution (uniform).
TEST(ChebyshevTest, EmpiricalGuaranteeHolds) {
  Rng rng(123);
  const double var = 1.0 / 12.0;  // uniform(0,1)
  const double conf = 0.8;
  const double t = chebyshev_deviation(var, conf);
  int inside = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (std::abs(rng.uniform() - 0.5) <= t) ++inside;
  }
  EXPECT_GE(static_cast<double>(inside) / trials, conf);
}

}  // namespace
}  // namespace prc
