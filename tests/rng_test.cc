#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/statistics.h"

namespace prc {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.5, 2.25);
    ASSERT_GE(x, -3.5);
    ASSERT_LT(x, 2.25);
  }
}

TEST(RngTest, UniformIntCoversSupportUniformly) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const auto v = rng.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.1, 0.01);
  }
}

TEST(RngTest, UniformIntSingletonSupport) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, UniformIntNegativeBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-7, -3);
    ASSERT_GE(v, -7);
    ASSERT_LE(v, -3);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(29);
  const double p = 0.37;
  int hits = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, p, 0.005);
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, SplitStreamsAreDistinct) {
  Rng parent(101);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same12 = 0, same1p = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto a = child1();
    const auto b = child2();
    const auto c = parent();
    if (a == b) ++same12;
    if (a == c) ++same1p;
  }
  EXPECT_LT(same12, 3);
  EXPECT_LT(same1p, 3);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(55);
  Rng b(55);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(RngTest, OutputBitsLookBalanced) {
  Rng rng(61);
  // Count set bits over many draws; each of the 64 positions should be ~50%.
  std::vector<int> bit_counts(64, 0);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t v = rng();
    for (int b = 0; b < 64; ++b) {
      if ((v >> b) & 1u) ++bit_counts[static_cast<std::size_t>(b)];
    }
  }
  for (int c : bit_counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.5, 0.02);
  }
}

TEST(RngTest, SplitMix64KnownSequenceIsStable) {
  // Regression anchor: document the first outputs for seed 0 so accidental
  // algorithm changes are caught (values from the reference implementation).
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafull);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ull);
}

}  // namespace
}  // namespace prc
