#include "data/citypulse.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/csv.h"
#include "common/statistics.h"
#include "data/dataset.h"

namespace prc::data {
namespace {

TEST(CityPulseTest, DefaultConfigMatchesPaperShape) {
  const CityPulseGenerator generator;
  const auto records = generator.generate();
  ASSERT_EQ(records.size(), 17568u);  // 61 days at 5-minute cadence
  EXPECT_EQ(records.front().timestamp, 1406851500);
  EXPECT_EQ(records[1].timestamp - records[0].timestamp, 300);
  EXPECT_EQ(records.back().timestamp,
            1406851500 + 300 * (17568 - 1));
}

TEST(CityPulseTest, DeterministicForSameSeed) {
  CityPulseConfig config;
  config.record_count = 500;
  const auto a = CityPulseGenerator(config).generate();
  const auto b = CityPulseGenerator(config).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].values, b[i].values);
  }
}

TEST(CityPulseTest, DifferentSeedsProduceDifferentData) {
  CityPulseConfig config;
  config.record_count = 500;
  const auto a = CityPulseGenerator(config).generate();
  config.seed += 1;
  const auto b = CityPulseGenerator(config).generate();
  int identical = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].values == b[i].values) ++identical;
  }
  EXPECT_LT(identical, 5);
}

TEST(CityPulseTest, ValuesWithinAqiDomain) {
  CityPulseConfig config;
  config.record_count = 5000;
  for (const auto& record : CityPulseGenerator(config).generate()) {
    for (double v : record.values) {
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 200.0);
    }
  }
}

TEST(CityPulseTest, SensorsAssignedRoundRobin) {
  CityPulseConfig config;
  config.record_count = 100;
  config.sensor_count = 4;
  const auto records = CityPulseGenerator(config).generate();
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sensor_id, static_cast<int>(i % 4));
  }
}

TEST(CityPulseTest, IndexesHaveDistinctDistributions) {
  CityPulseConfig config;
  config.record_count = 5000;
  const auto records = CityPulseGenerator(config).generate();
  RunningStats ozone, so2;
  for (const auto& r : records) {
    ozone.add(r.value(AirQualityIndex::kOzone));
    so2.add(r.value(AirQualityIndex::kSulfurDioxide));
  }
  // Ozone baseline (70) sits well above SO2 (25) in the climatology.
  EXPECT_GT(ozone.mean(), so2.mean() + 20.0);
}

TEST(CityPulseTest, DiurnalCycleVisibleInOzone) {
  CityPulseConfig config;
  config.record_count = 288 * 14;  // two weeks
  const auto records = CityPulseGenerator(config).generate();
  RunningStats day, night;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const std::size_t slot = i % 288;  // 5-minute slots per day
    const double v = records[i].value(AirQualityIndex::kOzone);
    if (slot >= 144 && slot < 216) day.add(v);    // ~noon-6pm
    else if (slot < 72) night.add(v);             // midnight-6am
  }
  EXPECT_GT(day.mean(), night.mean());
}

TEST(CityPulseTest, CsvRoundTripPreservesRecords) {
  CityPulseConfig config;
  config.record_count = 200;
  const auto records = CityPulseGenerator(config).generate();
  const std::string path = ::testing::TempDir() + "/prc_citypulse.csv";
  write_records_csv(records, path);
  const auto loaded = read_records_csv(path);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].timestamp, records[i].timestamp);
    EXPECT_EQ(loaded[i].sensor_id, records[i].sensor_id);
    for (std::size_t j = 0; j < kAirQualityIndexCount; ++j) {
      EXPECT_NEAR(loaded[i].values[j], records[i].values[j], 1e-5);
    }
  }
  std::remove(path.c_str());
}

TEST(CityPulseTest, TimestampParserHandlesBothShapes) {
  EXPECT_EQ(parse_citypulse_timestamp("1406851500"), 1406851500);
  // 2014-08-01 00:05:00 UTC == 1406851500.
  EXPECT_EQ(parse_citypulse_timestamp("2014-08-01 00:05:00"), 1406851500);
  EXPECT_EQ(parse_citypulse_timestamp("1970-01-01 00:00:00"), 0);
  EXPECT_EQ(parse_citypulse_timestamp("1970-01-02 00:00:01"), 86401);
  EXPECT_THROW(parse_citypulse_timestamp("yesterday"),
               std::invalid_argument);
  EXPECT_THROW(parse_citypulse_timestamp("2014-13-01 00:00:00"),
               std::invalid_argument);
}

TEST(CityPulseTest, LoadsRealExportSchemaVerbatim) {
  // The genuine CityPulse pollution export: misspelled columns, datetime
  // timestamps, lat/long noise columns, no sensor_id.
  const std::string path = ::testing::TempDir() + "/prc_real_schema.csv";
  {
    CsvTable table({"ozone", "particullate_matter", "carbon_monoxide",
                    "sulfure_dioxide", "nitrogen_dioxide", "longitude",
                    "latitude", "timestamp"});
    table.add_row({"91", "55", "61", "7", "50", "10.1050", "56.2317",
                   "2014-08-01 00:05:00"});
    table.add_row({"70", "61", "58", "24", "56", "10.1050", "56.2317",
                   "2014-08-01 00:10:00"});
    write_csv_file(table, path);
  }
  const auto records = read_records_csv(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].timestamp, 1406851500);
  EXPECT_EQ(records[1].timestamp - records[0].timestamp, 300);
  EXPECT_EQ(records[0].sensor_id, 0);  // absent column defaults
  EXPECT_EQ(records[0].value(AirQualityIndex::kOzone), 91.0);
  EXPECT_EQ(records[0].value(AirQualityIndex::kParticulateMatter), 55.0);
  EXPECT_EQ(records[0].value(AirQualityIndex::kSulfurDioxide), 7.0);
  EXPECT_EQ(records[1].value(AirQualityIndex::kNitrogenDioxide), 56.0);
  std::remove(path.c_str());
}

TEST(CityPulseTest, CsvLoaderRejectsMissingColumns) {
  const std::string path = ::testing::TempDir() + "/prc_bad.csv";
  {
    CsvTable table({"timestamp", "sensor_id", "ozone"});  // missing indexes
    table.add_row({"0", "0", "1.0"});
    write_csv_file(table, path);
  }
  EXPECT_THROW(read_records_csv(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(DatasetTest, ColumnsExtractIndexValues) {
  CityPulseConfig config;
  config.record_count = 300;
  const auto records = CityPulseGenerator(config).generate();
  const Dataset dataset(records);
  EXPECT_EQ(dataset.record_count(), 300u);
  const auto& col = dataset.column(AirQualityIndex::kCarbonMonoxide);
  ASSERT_EQ(col.size(), 300u);
  EXPECT_EQ(col.values()[7],
            records[7].value(AirQualityIndex::kCarbonMonoxide));
}

TEST(DatasetTest, ExactRangeCountMatchesScan) {
  CityPulseConfig config;
  config.record_count = 1000;
  const Dataset dataset(CityPulseGenerator(config).generate());
  const auto& col = dataset.column(AirQualityIndex::kOzone);
  const double l = col.quantile(0.3);
  const double u = col.quantile(0.7);
  std::size_t scan = 0;
  for (double v : col.values()) {
    if (v >= l && v <= u) ++scan;
  }
  EXPECT_EQ(col.exact_range_count(l, u), scan);
  EXPECT_EQ(col.exact_range_count(u, l), 0u);  // inverted range
  EXPECT_EQ(col.exact_range_count(col.min(), col.max()), col.size());
}

TEST(DatasetTest, PrefixRestrictsRecords) {
  CityPulseConfig config;
  config.record_count = 100;
  const auto records = CityPulseGenerator(config).generate();
  const auto prefix = Dataset::prefix(records, 40);
  EXPECT_EQ(prefix.record_count(), 40u);
  const auto clamped = Dataset::prefix(records, 1000);
  EXPECT_EQ(clamped.record_count(), 100u);
}

TEST(DatasetTest, QuantileBoundsAndErrors) {
  const Column col("c", {5.0, 1.0, 3.0});
  EXPECT_EQ(col.quantile(0.0), 1.0);
  EXPECT_EQ(col.quantile(1.0), 5.0);
  EXPECT_THROW(col.quantile(2.0), std::invalid_argument);
  const Column empty("e", {});
  EXPECT_THROW(empty.min(), std::logic_error);
  EXPECT_THROW(empty.quantile(0.5), std::logic_error);
}

}  // namespace
}  // namespace prc::data
