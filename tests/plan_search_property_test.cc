// Randomized equivalence sweep: the coarse-to-fine (alpha', delta') search
// must agree with the exhaustive fine-grid reference on every spec — same
// feasibility verdict, and when feasible an amplified budget at least as
// good as the grid's, matching it to tight relative tolerance.
//
// The reference grid is deliberately much finer (2^19 points) than the old
// production default (512): near the unimodal minimum the objective is
// locally quadratic, so a grid of G points lands within ~(1/G)^2 of the
// continuous optimum in relative epsilon.  Empirically a 2^17 grid still
// loses to the golden-section result by up to ~1.3e-9 relative on specs
// whose optimum sits in a narrow well; two more doublings push the grid's
// own discretization error to ~1e-10, an order below the 1e-9 gate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "common/rng.h"
#include "dp/optimizer.h"
#include "query/range_query.h"

namespace prc::dp {
namespace {

constexpr int kSpecs = 1000;
constexpr std::size_t kReferenceGrid = std::size_t{1} << 19;
constexpr double kRtol = 1e-9;

OptimizerConfig coarse_to_fine_config() {
  OptimizerConfig config;
  config.search_strategy = SearchStrategy::kCoarseToFine;
  // Disable the memo so every call exercises the raw search.
  config.plan_cache_capacity = 0;
  return config;
}

OptimizerConfig reference_config() {
  OptimizerConfig config;
  config.search_strategy = SearchStrategy::kExhaustiveGrid;
  config.grid_points = kReferenceGrid;
  config.plan_cache_capacity = 0;
  return config;
}

TEST(PlanSearchPropertyTest, CoarseToFineMatchesExhaustiveFineGrid) {
  const PerturbationOptimizer fast(coarse_to_fine_config());
  const PerturbationOptimizer reference(reference_config());

  Rng rng(20260808);
  int feasible = 0;
  for (int trial = 0; trial < kSpecs; ++trial) {
    const query::AccuracySpec spec{rng.uniform(0.01, 0.3),
                                   rng.uniform(0.4, 0.95)};
    const double p = rng.uniform(0.005, 1.0);
    const auto node_count =
        static_cast<std::size_t>(rng.uniform_int(2, 64));
    const auto total_count =
        static_cast<std::size_t>(rng.uniform_int(1000, 100000));

    const auto got = fast.optimize(spec, p, node_count, total_count);
    const auto want = reference.optimize(spec, p, node_count, total_count);

    ASSERT_EQ(got.has_value(), want.has_value())
        << "feasibility verdict diverged at trial " << trial << ": spec="
        << spec.to_string() << " p=" << p << " k=" << node_count
        << " n=" << total_count;
    if (!got) continue;
    ++feasible;

    // Never worse: the refinement starts from a bracket that contains the
    // continuous optimum, so it cannot lose to any grid.
    EXPECT_LE(got->epsilon, want->epsilon * (1.0 + kRtol))
        << "trial " << trial << " fast=" << got->to_string()
        << " reference=" << want->to_string();
    EXPECT_NEAR(got->epsilon_amplified, want->epsilon_amplified,
                kRtol * want->epsilon_amplified)
        << "trial " << trial << " fast=" << got->to_string()
        << " reference=" << want->to_string();
    // The winning split itself should agree too, not just its objective.
    EXPECT_NEAR(got->alpha_prime, want->alpha_prime,
                1e-3 * (spec.alpha - got->alpha_prime) + 1e-6);
  }
  // The draw ranges are chosen so a healthy majority of specs is feasible;
  // if this trips, the sweep stopped exercising the interesting branch.
  EXPECT_GE(feasible, kSpecs / 3) << "too few feasible specs in the sweep";
}

// The worst-case sensitivity policy scales the objective but not its shape;
// the equivalence must survive the policy switch.
TEST(PlanSearchPropertyTest, EquivalenceHoldsUnderWorstCasePolicy) {
  auto fast_config = coarse_to_fine_config();
  auto ref_config = reference_config();
  fast_config.sensitivity_policy = SensitivityPolicy::kWorstCase;
  ref_config.sensitivity_policy = SensitivityPolicy::kWorstCase;
  const PerturbationOptimizer fast(fast_config);
  const PerturbationOptimizer reference(ref_config);

  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const query::AccuracySpec spec{rng.uniform(0.02, 0.3),
                                   rng.uniform(0.4, 0.9)};
    const double p = rng.uniform(0.05, 1.0);
    const std::size_t node_count = 8;
    const std::size_t total_count = 17568;
    const std::size_t max_node_count = total_count / node_count;

    const auto got =
        fast.optimize(spec, p, node_count, total_count, max_node_count);
    const auto want =
        reference.optimize(spec, p, node_count, total_count, max_node_count);
    ASSERT_EQ(got.has_value(), want.has_value()) << "trial " << trial;
    if (!got) continue;
    EXPECT_NEAR(got->epsilon_amplified, want->epsilon_amplified,
                kRtol * want->epsilon_amplified)
        << "trial " << trial;
    EXPECT_DOUBLE_EQ(got->sensitivity, want->sensitivity);
  }
}

}  // namespace
}  // namespace prc::dp
