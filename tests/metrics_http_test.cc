// /metrics HTTP endpoint: ephemeral-port bind, live scrape parsed by the
// promtool-style parser, /healthz, 404s, and idempotent shutdown.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/metrics_http.h"
#include "common/prometheus.h"
#include "common/telemetry.h"

namespace prc::telemetry {
namespace {

// Minimal blocking HTTP/1.0-style client: one request, read to EOF.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  for (;;) {
    const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const auto split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(MetricsHttpTest, EphemeralPortServesParseableMetrics) {
  Telemetry::registry().reset();
  telemetry::counter("market.sales").increment(7);
  telemetry::histogram("dp.answer_duration_us").record(125.0);

  MetricsHttpServer server(0);
  ASSERT_NE(server.port(), 0);

  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find(prometheus::content_type()), std::string::npos);
  const auto parsed = prometheus::parse_exposition(body_of(response));
  const auto* sales = parsed.find("prc_market_sales_total");
  ASSERT_NE(sales, nullptr);
  EXPECT_EQ(sales->samples[0].value, 7.0);
  // The handler publishes tracer stats before rendering, so the scrape
  // always carries the drop gauge.
  EXPECT_NE(parsed.find("prc_trace_spans_dropped"), nullptr);

  server.stop();
  Telemetry::registry().reset();
}

TEST(MetricsHttpTest, HealthzAndUnknownPaths) {
  MetricsHttpServer server(0);
  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(health), "ok\n");

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos);

  EXPECT_GE(server.requests_served(), 2u);
  server.stop();
}

TEST(MetricsHttpTest, StopIsIdempotentAndDestructorSafe) {
  auto* server = new MetricsHttpServer(0);
  const auto port = server->port();
  EXPECT_NE(port, 0);
  server->stop();
  server->stop();  // second stop is a no-op
  delete server;   // destructor after explicit stop is safe
  // A new server can bind again immediately (ephemeral port).
  MetricsHttpServer again(0);
  EXPECT_NE(again.port(), 0);
  again.stop();
}

TEST(MetricsHttpTest, TwoServersCoexistOnDistinctPorts) {
  MetricsHttpServer a(0);
  MetricsHttpServer b(0);
  EXPECT_NE(a.port(), b.port());
  EXPECT_NE(http_get(a.port(), "/healthz").find("200"), std::string::npos);
  EXPECT_NE(http_get(b.port(), "/healthz").find("200"), std::string::npos);
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace prc::telemetry
