// Unit tests of the parallel execution layer: pool scheduling, nested
// inlining, exception propagation, and the determinism contract of the
// fixed-grid parallel_reduce.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.h"

namespace prc {
namespace {

/// Restores the global thread count on scope exit so tests do not leak
/// configuration into each other.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t count)
      : previous_(parallel::thread_count()) {
    parallel::set_thread_count(count);
  }
  ~ThreadCountGuard() { parallel::set_thread_count(previous_); }

 private:
  std::size_t previous_;
};

TEST(ParallelConfig, ThreadCountDefaultsAndOverrides) {
  EXPECT_GE(parallel::hardware_threads(), 1u);
  ThreadCountGuard guard(3);
  EXPECT_EQ(parallel::thread_count(), 3u);
  parallel::set_thread_count(0);  // 0 = hardware
  EXPECT_EQ(parallel::thread_count(), parallel::hardware_threads());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  parallel::parallel_for_each(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges) {
  ThreadCountGuard guard(4);
  std::atomic<int> calls{0};
  parallel::parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  parallel::parallel_for_each(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, ChunksAreContiguousAndDisjoint) {
  ThreadCountGuard guard(4);
  constexpr std::size_t kN = 997;  // prime: uneven block boundaries
  std::vector<int> owner(kN, -1);
  std::atomic<int> next_chunk{0};
  parallel::parallel_for(kN, [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    const int id = next_chunk.fetch_add(1);
    for (std::size_t i = begin; i < end; ++i) owner[i] = id;
  });
  // Every index owned, and ownership changes only at chunk boundaries.
  for (std::size_t i = 0; i < kN; ++i) ASSERT_NE(owner[i], -1);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadCountGuard guard(4);
  EXPECT_THROW(
      parallel::parallel_for_each(1000,
                                  [&](std::size_t i) {
                                    if (i == 513) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> ok{0};
  parallel::parallel_for_each(100, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 100);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadCountGuard guard(4);
  std::atomic<int> inner_total{0};
  parallel::parallel_for_each(8, [&](std::size_t) {
    EXPECT_TRUE(parallel::in_parallel_region());
    // A nested region must not try to re-enter the fixed pool.
    parallel::parallel_for_each(10, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 80);
  EXPECT_FALSE(parallel::in_parallel_region());
}

TEST(ParallelFor, SafeFromExternalThreads) {
  ThreadCountGuard guard(4);
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      parallel::parallel_for_each(
          1000, [&](std::size_t) { total.fetch_add(1); });
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(total.load(), 4000);
}

double chunked_sum(std::size_t n, std::size_t chunk,
                   const std::vector<double>& values) {
  return parallel::parallel_reduce(
      n, chunk, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double partial = 0.0;
        for (std::size_t i = begin; i < end; ++i) partial += values[i];
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kN = 5000;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);  // order-sensitive sum
  }
  double serial;
  {
    ThreadCountGuard guard(1);
    serial = chunked_sum(kN, 64, values);
  }
  for (std::size_t threads : {2, 4, 8}) {
    ThreadCountGuard guard(threads);
    const double parallel_sum = chunked_sum(kN, 64, values);
    // Bitwise equality, not tolerance: the grid and fold order are fixed.
    EXPECT_EQ(serial, parallel_sum) << "threads=" << threads;
  }
}

TEST(ParallelReduce, SingleChunkMatchesPlainLoop) {
  ThreadCountGuard guard(8);
  std::vector<double> values(100);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.1 * static_cast<double>(i);
  }
  double plain = 0.0;
  for (const double v : values) plain += v;
  // chunk >= n: exactly the serial left fold, bit for bit.
  EXPECT_EQ(plain, chunked_sum(values.size(), 256, values));
}

TEST(ParallelReduce, EmptyInputReturnsIdentity) {
  EXPECT_EQ(chunked_sum(0, 64, {}), 0.0);
}

TEST(ParallelReduce, NonCommutativeMergeKeepsChunkOrder) {
  ThreadCountGuard guard(4);
  constexpr std::size_t kN = 1000;
  const auto concat = parallel::parallel_reduce(
      kN, 100, std::vector<std::size_t>{},
      [](std::size_t begin, std::size_t end) {
        std::vector<std::size_t> ids;
        for (std::size_t i = begin; i < end; ++i) ids.push_back(i);
        return ids;
      },
      [](std::vector<std::size_t> acc, std::vector<std::size_t> part) {
        acc.insert(acc.end(), part.begin(), part.end());
        return acc;
      });
  ASSERT_EQ(concat.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(concat[i], i);
}

}  // namespace
}  // namespace prc
