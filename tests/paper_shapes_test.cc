// Reproduction-as-test: the qualitative shape of every paper figure,
// asserted on scaled-down versions of the bench configurations so CI
// catches any regression that would bend a curve the wrong way.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "common/statistics.h"
#include "data/citypulse.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "dp/laplace_mechanism.h"
#include "estimator/accuracy.h"
#include "iot/network.h"
#include "query/workload.h"

namespace prc {
namespace {

constexpr std::size_t kNodes = 4;

struct Corpus {
  Corpus() {
    data::CityPulseConfig config;
    config.record_count = 6000;
    dataset = std::make_unique<data::Dataset>(
        data::CityPulseGenerator(config).generate());
    column = &dataset->column(data::AirQualityIndex::kOzone);
    suite = query::default_evaluation_suite(*column);
  }
  std::unique_ptr<data::Dataset> dataset;
  const data::Column* column = nullptr;
  std::vector<query::RangeQuery> suite;
};

const Corpus& corpus() {
  static const Corpus instance;
  return instance;
}

/// Mean relative error of RankCounting at probability p over the suite,
/// averaged across trials (queries below 10% selectivity skipped).
double mean_error_at(double p, std::size_t trials, std::uint64_t seed,
                     double laplace_epsilon = 0.0) {
  const auto& c = corpus();
  RunningStats err;
  Rng noise_rng(seed + 999);
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng(seed + t * 97);
    auto node_data = data::partition_values(
        c.column->values(), kNodes, data::PartitionStrategy::kRoundRobin,
        rng);
    iot::NetworkConfig config;
    config.seed = seed + t * 13 + 1;
    iot::FlatNetwork network(std::move(node_data), config);
    network.ensure_sampling_probability(p);
    std::unique_ptr<dp::LaplaceMechanism> mechanism;
    if (laplace_epsilon > 0.0) {
      mechanism = std::make_unique<dp::LaplaceMechanism>(1.0 / p,
                                                         laplace_epsilon);
    }
    for (const auto& q : c.suite) {
      const double truth = static_cast<double>(
          c.column->exact_range_count(q.lower, q.upper));
      if (truth < static_cast<double>(c.column->size()) * 0.1) continue;
      double estimate = network.rank_counting_estimate(q);
      if (mechanism) estimate = mechanism->perturb(estimate, noise_rng);
      err.add(std::abs(estimate - truth) / truth);
    }
  }
  return err.mean();
}

TEST(PaperShapes, Fig2ErrorFallsWithSamplingProbability) {
  const double at_002 = mean_error_at(0.02, 12, 11);
  const double at_010 = mean_error_at(0.10, 12, 11);
  const double at_040 = mean_error_at(0.40, 12, 11);
  EXPECT_GT(at_002, at_010 * 2.0);
  EXPECT_GT(at_010, at_040 * 2.0);
  EXPECT_LT(at_040, 0.01);  // "few percent once enough data is preserved"
}

TEST(PaperShapes, Fig3DeltaSweepStabilizes) {
  // At fixed alpha, raising delta raises the Thm 3.3 probability and the
  // realized error improves.
  const auto& c = corpus();
  const std::size_t n = c.column->size();
  const double p_low = estimator::required_sampling_probability(
      {0.055, 0.1}, kNodes, n);
  const double p_high = estimator::required_sampling_probability(
      {0.055, 0.8}, kNodes, n);
  ASSERT_LT(p_low, p_high);
  EXPECT_GT(mean_error_at(p_low, 12, 23), mean_error_at(p_high, 12, 23));
}

TEST(PaperShapes, Fig4SampleCountIndependentOfDataSize) {
  const query::AccuracySpec spec{0.055, 0.5};
  double expected_samples_small = 0.0, expected_samples_large = 0.0;
  {
    const double p =
        estimator::required_sampling_probability(spec, kNodes, 2000);
    expected_samples_small = p * 2000.0;
  }
  {
    const double p =
        estimator::required_sampling_probability(spec, kNodes, 200000);
    expected_samples_large = p * 200000.0;
  }
  // Thm 3.3: p*n = sqrt(8k)*2/(alpha*sqrt(1-delta)) exactly, any n.
  EXPECT_NEAR(expected_samples_small, expected_samples_large, 1e-6);
  // And p itself decays as 1/n.
  EXPECT_NEAR(
      estimator::required_sampling_probability(spec, kNodes, 2000) /
          estimator::required_sampling_probability(spec, kNodes, 200000),
      100.0, 1e-6);
}

TEST(PaperShapes, Fig5ErrorFallsWithEpsilonAndFlattens) {
  const double p = 0.4;
  const double at_005 = mean_error_at(p, 10, 31, 0.05);
  const double at_05 = mean_error_at(p, 10, 31, 0.5);
  const double at_8 = mean_error_at(p, 10, 31, 8.0);
  const double sampling_floor = mean_error_at(p, 10, 31);
  EXPECT_GT(at_005, at_05);
  EXPECT_GT(at_05, at_8 * 0.999);
  // Large epsilon converges to the pure-sampling error.
  EXPECT_NEAR(at_8, sampling_floor, sampling_floor * 0.5);
}

TEST(PaperShapes, Fig6MoreSamplesBeatNoiseAtFixedBudget) {
  // GS ~ 1/p: at fixed epsilon, larger p wins twice (sharper estimate AND
  // smaller sensitivity).
  const double eps = 0.1;
  EXPECT_GT(mean_error_at(0.05, 10, 41, eps),
            mean_error_at(0.30, 10, 41, eps) * 2.0);
}

}  // namespace
}  // namespace prc
