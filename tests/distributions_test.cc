#include "common/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"

namespace prc {
namespace {

TEST(LaplaceTest, RejectsNonPositiveScale) {
  EXPECT_THROW(Laplace(0.0), std::invalid_argument);
  EXPECT_THROW(Laplace(-1.0), std::invalid_argument);
}

TEST(LaplaceTest, PdfIntegratesToOneNumerically) {
  const Laplace lap(2.0);
  double integral = 0.0;
  const double dx = 0.01;
  for (double x = -60.0; x <= 60.0; x += dx) integral += lap.pdf(x) * dx;
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(LaplaceTest, CdfMatchesClosedForm) {
  const Laplace lap(1.5);
  EXPECT_NEAR(lap.cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(lap.cdf(-1e9), 0.0, 1e-12);
  EXPECT_NEAR(lap.cdf(1e9), 1.0, 1e-12);
  // Symmetry: F(-x) = 1 - F(x).
  for (double x : {0.1, 0.7, 2.0, 5.0}) {
    EXPECT_NEAR(lap.cdf(-x), 1.0 - lap.cdf(x), 1e-12);
  }
}

TEST(LaplaceTest, CentralProbabilityConsistentWithCdf) {
  const Laplace lap(3.0);
  for (double t : {0.5, 1.0, 2.5, 10.0}) {
    EXPECT_NEAR(lap.central_probability(t), lap.cdf(t) - lap.cdf(-t), 1e-12);
  }
  EXPECT_EQ(lap.central_probability(0.0), 0.0);
  EXPECT_EQ(lap.central_probability(-1.0), 0.0);
}

TEST(LaplaceTest, CentralQuantileInvertsCentralProbability) {
  const Laplace lap(0.8);
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const double t = lap.central_quantile(q);
    EXPECT_NEAR(lap.central_probability(t), q, 1e-9);
  }
  EXPECT_THROW(lap.central_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(lap.central_quantile(-0.1), std::invalid_argument);
}

TEST(LaplaceTest, SampleMomentsMatchTheory) {
  const double scale = 2.5;
  const Laplace lap(scale);
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 300000; ++i) stats.add(lap.sample(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  // Var = 2 b^2 = 12.5.
  EXPECT_NEAR(stats.variance(), 2.0 * scale * scale, 0.3);
}

TEST(LaplaceTest, SampleTailMatchesCentralProbability) {
  const Laplace lap(1.0);
  Rng rng(5);
  const double t = 2.0;
  int inside = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    if (std::abs(lap.sample(rng)) <= t) ++inside;
  }
  EXPECT_NEAR(static_cast<double>(inside) / trials, lap.central_probability(t),
              0.005);
}

TEST(GeometricTest, RejectsBadProbability) {
  EXPECT_THROW(Geometric(0.0), std::invalid_argument);
  EXPECT_THROW(Geometric(1.5), std::invalid_argument);
}

TEST(GeometricTest, PmfSumsToOne) {
  const Geometric geo(0.3);
  double sum = 0.0;
  for (std::int64_t j = 1; j <= 200; ++j) sum += geo.pmf(j);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(geo.pmf(0), 0.0);
  EXPECT_EQ(geo.pmf(-3), 0.0);
}

TEST(GeometricTest, SampleMomentsMatchTheory) {
  const double p = 0.2;
  const Geometric geo(p);
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(static_cast<double>(geo.sample(rng)));
  }
  EXPECT_NEAR(stats.mean(), geo.mean(), 0.05);
  EXPECT_NEAR(stats.variance(), geo.variance(), 0.6);
}

TEST(GeometricTest, DegenerateProbabilityOneAlwaysOne) {
  const Geometric geo(1.0);
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geo.sample(rng), 1);
}

TEST(ExponentialTest, MeanMatchesRate) {
  Rng rng(12);
  RunningStats stats;
  const double rate = 0.5;
  for (int i = 0; i < 200000; ++i) stats.add(sample_exponential(rng, rate));
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 0.03);
  EXPECT_THROW(sample_exponential(rng, 0.0), std::invalid_argument);
}

TEST(NormalTest, MomentsMatch) {
  Rng rng(14);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(sample_normal(rng, 3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.03);
}

TEST(ZipfTest, SkewTowardSmallIndices) {
  Rng rng(16);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto v = sample_zipf(rng, 5, 1.2);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[4]);
}

TEST(ZipfTest, RejectsEmptySupport) {
  Rng rng(18);
  EXPECT_THROW(sample_zipf(rng, 0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace prc
