#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/rng.h"
#include "iot/network.h"
#include "data/partition.h"
#include "market/broker.h"
#include "market/consumer.h"
#include "market/ledger.h"

namespace prc::market {
namespace {

constexpr std::size_t kNodes = 8;
constexpr std::size_t kTotal = 20000;

std::vector<std::vector<double>> node_data() {
  std::vector<double> values(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) values[i] = static_cast<double>(i);
  Rng rng(3);
  return data::partition_values(values, kNodes,
                                data::PartitionStrategy::kRoundRobin, rng);
}

pricing::VarianceModel variance_model() {
  return pricing::VarianceModel(kTotal, kNodes);
}

std::unique_ptr<pricing::PricingFunction> safe_pricing() {
  return std::make_unique<pricing::InverseVariancePricing>(
      variance_model(), query::AccuracySpec{0.1, 0.5}, 100.0, 1.0);
}

std::unique_ptr<pricing::PricingFunction> steep_pricing() {
  return std::make_unique<pricing::InverseVariancePricing>(
      variance_model(), query::AccuracySpec{0.1, 0.5}, 100.0, 2.0);
}

struct MarketFixture {
  explicit MarketFixture(std::unique_ptr<pricing::PricingFunction> pricing)
      : network(node_data()),
        counter(network),
        broker(counter, std::move(pricing)) {}

  iot::FlatNetwork network;
  dp::PrivateRangeCounter counter;
  DataBroker broker;
};

TEST(LedgerTest, RecordsAndAggregates) {
  Ledger ledger;
  EXPECT_EQ(ledger.record({0, "alice", {0, 1}, {0.1, 0.5}, 10.0, 0.2}), 0u);
  EXPECT_EQ(ledger.record({0, "bob", {0, 1}, {0.1, 0.5}, 5.0, 0.1}), 1u);
  EXPECT_EQ(ledger.record({0, "alice", {0, 1}, {0.2, 0.4}, 2.5, 0.05}), 2u);
  EXPECT_EQ(ledger.transaction_count(), 3u);
  EXPECT_DOUBLE_EQ(ledger.total_revenue(), 17.5);
  EXPECT_DOUBLE_EQ(ledger.consumer_spend("alice"), 12.5);
  EXPECT_DOUBLE_EQ(ledger.consumer_epsilon("alice"), 0.25);
  EXPECT_DOUBLE_EQ(ledger.consumer_spend("carol"), 0.0);
  EXPECT_DOUBLE_EQ(ledger.consumer_epsilon("carol"), 0.0);
  // Global exposure = sum over all consumers (collusion-safe audit).
  EXPECT_DOUBLE_EQ(ledger.total_epsilon(), 0.35);
}

TEST(LedgerTest, RejectsNegativeAmounts) {
  Ledger ledger;
  EXPECT_THROW(ledger.record({0, "x", {0, 1}, {0.1, 0.5}, -1.0, 0.1}),
               std::invalid_argument);
  EXPECT_THROW(ledger.record({0, "x", {0, 1}, {0.1, 0.5}, 1.0, -0.1}),
               std::invalid_argument);
}

TEST(LedgerReservationTest, ExtendWithinCapGrowsTheHold) {
  Ledger ledger;
  auto reservation = ledger.try_reserve("alice", 0.01, 0.05);
  ASSERT_TRUE(reservation.has_value());
  EXPECT_TRUE(ledger.try_extend(*reservation, 0.02, 0.05));
  EXPECT_DOUBLE_EQ(reservation->epsilon().value(), 0.03);
  // The grown hold blocks headroom the original reservation would have
  // left open to a competing sale.
  EXPECT_FALSE(ledger.try_reserve("alice", 0.025, 0.05).has_value());
  EXPECT_TRUE(ledger.try_reserve("alice", 0.02, 0.05).has_value());
}

TEST(LedgerReservationTest, ExtendPastCapRefusesAndLeavesHoldIntact) {
  Ledger ledger;
  auto reservation = ledger.try_reserve("alice", 0.03, 0.05);
  ASSERT_TRUE(reservation.has_value());
  EXPECT_FALSE(ledger.try_extend(*reservation, 0.021, 0.05));
  EXPECT_DOUBLE_EQ(reservation->epsilon().value(), 0.03);
  // A refused extension leaves the original hold in place; releasing the
  // reservation returns ALL of it, including any prior extension.
  EXPECT_TRUE(ledger.try_extend(*reservation, 0.01, 0.05));
  reservation.reset();
  EXPECT_TRUE(ledger.try_reserve("alice", 0.05, 0.05).has_value());
}

TEST(LedgerReservationTest, CommitAboveTheReservationIsFlaggedAsOverrun) {
  // The mint barrier keeps the reservation aligned with the minted plan,
  // so an overrun at commit means a release slipped past the cap without
  // admission: fatal in debug builds, counted in release builds.
  Ledger ledger;
  auto reservation = ledger.try_reserve("alice", 0.01, 1.0);
  ASSERT_TRUE(reservation.has_value());
  const Transaction oversized{0, "alice", {0, 1}, {0.1, 0.5}, 1.0, 0.02};
#if PRC_DCHECK_IS_ON()
  EXPECT_THROW(ledger.commit(std::move(*reservation), oversized),
               std::invalid_argument);
#else
  ledger.commit(std::move(*reservation), oversized);
  EXPECT_DOUBLE_EQ(ledger.consumer_epsilon("alice").value(), 0.02);
#endif
}

TEST(BrokerTest, RequiresPricing) {
  iot::FlatNetwork network(node_data());
  dp::PrivateRangeCounter counter(network);
  EXPECT_THROW(DataBroker(counter, nullptr), std::invalid_argument);
}

TEST(BrokerTest, SellRecordsTransactionAndCharges) {
  MarketFixture fixture(safe_pricing());
  const query::AccuracySpec spec{0.08, 0.7};
  const double quoted = fixture.broker.quote(spec);
  const auto receipt =
      fixture.broker.sell("alice", {1000.5, 15000.5}, spec);
  EXPECT_DOUBLE_EQ(receipt.price, quoted);
  EXPECT_EQ(fixture.broker.ledger().transaction_count(), 1u);
  EXPECT_DOUBLE_EQ(fixture.broker.ledger().total_revenue(), quoted);
  EXPECT_GT(fixture.broker.ledger().consumer_epsilon("alice"), 0.0);
  EXPECT_GE(receipt.value, 0.0);
  EXPECT_LE(receipt.value, static_cast<double>(kTotal));
}

TEST(BrokerTest, PrivacyBudgetAccumulatesAcrossSales) {
  MarketFixture fixture(safe_pricing());
  const query::AccuracySpec spec{0.1, 0.6};
  fixture.broker.sell("alice", {100.5, 5000.5}, spec);
  const double after_one =
      fixture.broker.ledger().consumer_epsilon("alice");
  fixture.broker.sell("alice", {100.5, 5000.5}, spec);
  const double after_two =
      fixture.broker.ledger().consumer_epsilon("alice");
  EXPECT_NEAR(after_two, 2.0 * after_one, after_one * 0.2);
}

TEST(HonestConsumerTest, PaysQuotedPrice) {
  MarketFixture fixture(safe_pricing());
  HonestConsumer consumer("carol", fixture.broker);
  const query::AccuracySpec spec{0.1, 0.8};
  const auto outcome = consumer.acquire({500.5, 9000.5}, spec);
  EXPECT_EQ(outcome.queries_issued, 1u);
  EXPECT_DOUBLE_EQ(outcome.total_cost, fixture.broker.quote(spec));
}

TEST(ArbitrageAttackerTest, ProfitsAgainstSteepPricing) {
  MarketFixture fixture(steep_pricing());
  ArbitrageAttacker attacker("mallory", fixture.broker,
                             pricing::AttackSimulator(variance_model()));
  const query::AccuracySpec target{0.05, 0.9};
  const double honest_price = fixture.broker.quote(target);
  const auto outcome = attacker.acquire({1000.5, 15000.5}, target);
  EXPECT_GT(outcome.queries_issued, 1u);
  EXPECT_LT(outcome.total_cost, honest_price);
  EXPECT_TRUE(attacker.last_plan().profitable);
  // The held average's variance meets the target contract.
  EXPECT_LE(outcome.effective_variance,
            variance_model().contract_variance(target) * (1 + 1e-9));
  // Every purchase hit the ledger.
  EXPECT_EQ(fixture.broker.ledger().transaction_count(),
            outcome.queries_issued);
  EXPECT_NEAR(fixture.broker.ledger().consumer_spend("mallory"),
              outcome.total_cost, 1e-9);
}

TEST(ArbitrageAttackerTest, ForcedHonestAgainstTheoremPricing) {
  MarketFixture fixture(safe_pricing());
  ArbitrageAttacker attacker("mallory", fixture.broker,
                             pricing::AttackSimulator(variance_model()));
  const query::AccuracySpec target{0.05, 0.9};
  const auto outcome = attacker.acquire({1000.5, 15000.5}, target);
  EXPECT_EQ(outcome.queries_issued, 1u);
  EXPECT_FALSE(attacker.last_plan().profitable);
  EXPECT_DOUBLE_EQ(outcome.total_cost, fixture.broker.quote(target));
}

TEST(BudgetedBrokerTest, RefusesSalesPastTheCap) {
  iot::FlatNetwork network(node_data());
  dp::PrivateRangeCounter counter(network);
  BrokerConfig config;
  config.per_consumer_epsilon_cap = 0.02;
  DataBroker broker(counter, safe_pricing(), config);
  const query::RangeQuery range{100.5, 15000.5};
  const query::AccuracySpec spec{0.05, 0.8};

  double spent = 0.0;
  std::size_t sales = 0;
  try {
    for (int i = 0; i < 100; ++i) {
      broker.sell("alice", range, spec);
      ++sales;
      spent = broker.ledger().consumer_epsilon("alice");
    }
    FAIL() << "cap never triggered";
  } catch (const BudgetExceededError& e) {
    EXPECT_GT(sales, 0u);                 // some sales went through
    EXPECT_LE(spent, 0.02);               // never exceeded before refusing
    EXPECT_DOUBLE_EQ(e.cap(), 0.02);
    EXPECT_GT(e.spent(), 0.02);           // the refused sale would overshoot
  }
  // A refused sale records nothing.
  EXPECT_EQ(broker.ledger().transaction_count(), sales);
  // Another consumer still has a fresh budget.
  EXPECT_DOUBLE_EQ(broker.remaining_budget("bob"), 0.02);
  EXPECT_NO_THROW(broker.sell("bob", range, spec));
}

TEST(BudgetedBrokerTest, RemainingBudgetDecreases) {
  iot::FlatNetwork network(node_data());
  dp::PrivateRangeCounter counter(network);
  BrokerConfig config;
  config.per_consumer_epsilon_cap = 1.0;
  DataBroker broker(counter, safe_pricing(), config);
  const double before = broker.remaining_budget("alice");
  broker.sell("alice", {100.5, 9000.5}, {0.1, 0.6});
  EXPECT_LT(broker.remaining_budget("alice"), before);
  EXPECT_THROW(
      DataBroker(counter, safe_pricing(), BrokerConfig{0.0}),
      std::invalid_argument);
}

TEST(BudgetedBrokerTest, UnlimitedByDefault) {
  iot::FlatNetwork network(node_data());
  dp::PrivateRangeCounter counter(network);
  DataBroker broker(counter, safe_pricing());
  for (int i = 0; i < 5; ++i) {
    EXPECT_NO_THROW(broker.sell("alice", {100.5, 9000.5}, {0.1, 0.6}));
  }
  EXPECT_TRUE(std::isinf(broker.remaining_budget("alice")));
}

TEST(MarketIntegration, LedgerExposesAttackFootprint) {
  // Under vulnerable pricing the attacker triggers m separate sales; the
  // ledger shows the footprint: many transactions, total spend below the
  // honest quote (the arbitrage), and a cumulative epsilon equal to the sum
  // of the per-sale amplified budgets (sequential composition).
  MarketFixture fixture(steep_pricing());
  HonestConsumer honest("alice", fixture.broker);
  ArbitrageAttacker attacker("mallory", fixture.broker,
                             pricing::AttackSimulator(variance_model()));
  const query::AccuracySpec target{0.05, 0.9};
  honest.acquire({1000.5, 15000.5}, target);
  const auto outcome = attacker.acquire({1000.5, 15000.5}, target);
  const auto& ledger = fixture.broker.ledger();
  EXPECT_GT(outcome.queries_issued, 1u);
  EXPECT_LT(ledger.consumer_spend("mallory"),
            fixture.broker.quote(target));
  double mallory_eps = 0.0;
  for (const auto& txn : ledger.transactions_snapshot()) {
    if (txn.consumer_id == "mallory") mallory_eps += txn.epsilon_amplified;
  }
  EXPECT_NEAR(ledger.consumer_epsilon("mallory"), mallory_eps, 1e-12);
  EXPECT_GT(mallory_eps, 0.0);
}

}  // namespace
}  // namespace prc::market
