// Runtime and compile-time semantics of the privacy-unit types
// (src/common/units.h): same-unit arithmetic, the double adoption path,
// non-convertibility between units, the Raw/Released taint boundary, and a
// full round-trip through the optimizer's (alpha', delta') plan selection.
//
// The negative space — conversions that must NOT compile — is asserted two
// ways: statically here via type traits (cheap, runs on every build) and
// behaviorally in tests/compile_fail/ (each forbidden expression in a real
// TU, with the diagnostic text checked).
#include "common/units.h"

#include <gtest/gtest.h>

#include <cmath>
#include <type_traits>

#include "common/rng.h"
#include "dp/amplification.h"
#include "dp/laplace_mechanism.h"
#include "dp/optimizer.h"
#include "estimator/accuracy.h"

namespace prc::units {
namespace {

// ---------------------------------------------------------------------------
// Compile-time contract: what converts, what does not.
// ---------------------------------------------------------------------------

// The adoption path: doubles and literals flow into any unit implicitly,
// and every unit reads out as a double.
static_assert(std::is_convertible_v<double, Epsilon>);
static_assert(std::is_convertible_v<double, EffectiveEpsilon>);
static_assert(std::is_convertible_v<double, Delta>);
static_assert(std::is_convertible_v<double, Alpha>);
static_assert(std::is_convertible_v<double, Probability>);
static_assert(std::is_convertible_v<Epsilon, double>);
static_assert(std::is_convertible_v<Probability, double>);

// The wall: no unit converts to a different unit.  One user-defined
// conversion per sequence means Unit -> double -> OtherUnit never happens
// implicitly.
static_assert(!std::is_convertible_v<Epsilon, EffectiveEpsilon>);
static_assert(!std::is_convertible_v<EffectiveEpsilon, Epsilon>);
static_assert(!std::is_convertible_v<Delta, Alpha>);
static_assert(!std::is_convertible_v<Alpha, Delta>);
static_assert(!std::is_convertible_v<Epsilon, Delta>);
static_assert(!std::is_convertible_v<Probability, Epsilon>);
static_assert(!std::is_assignable_v<Epsilon&, EffectiveEpsilon>);
static_assert(!std::is_assignable_v<Delta&, Alpha>);

// Zero-cost: same size and layout as the double it replaces.
static_assert(sizeof(Epsilon) == sizeof(double));
static_assert(std::is_trivially_copyable_v<EffectiveEpsilon>);
static_assert(std::is_trivially_copyable_v<Released<double>>);

// Raw<T> has no implicit conversions in either direction; the only read is
// the visible .get().
static_assert(!std::is_convertible_v<double, Raw<double>>);
static_assert(std::is_constructible_v<Raw<double>, double>);  // explicit
static_assert(!std::is_convertible_v<Raw<double>, double>);

// Released<T> reads out freely but cannot be minted from a value here —
// the constructor is private to the DP mechanisms.
static_assert(std::is_convertible_v<Released<double>, double>);
static_assert(!std::is_constructible_v<Released<double>, double>);
static_assert(std::is_default_constructible_v<Released<double>>);

// Raw must never silently launder into Released or vice versa.
static_assert(!std::is_convertible_v<Raw<double>, Released<double>>);
static_assert(!std::is_constructible_v<Released<double>, Raw<double>>);

// ---------------------------------------------------------------------------
// Runtime semantics.
// ---------------------------------------------------------------------------

TEST(UnitsTest, SameUnitArithmeticBehavesLikeDouble) {
  const Epsilon a = 0.25;
  const Epsilon b = 0.5;
  EXPECT_DOUBLE_EQ(a + b, 0.75);
  EXPECT_DOUBLE_EQ(b - a, 0.25);
  EXPECT_DOUBLE_EQ(a * 2.0, 0.5);
  EXPECT_DOUBLE_EQ(b / 2.0, 0.25);
  EXPECT_LT(a, b);
  EXPECT_GE(b, a);
}

TEST(UnitsTest, AccumulationOperatorsStaySameUnit) {
  EffectiveEpsilon total = 0.0;
  total += EffectiveEpsilon(0.25);
  total += 0.5;  // literal flows in via the implicit constructor
  EXPECT_DOUBLE_EQ(total.value(), 0.75);
  total -= 0.25;
  EXPECT_DOUBLE_EQ(total.value(), 0.5);
}

TEST(UnitsTest, UnitsInteroperateWithMathAndStreams) {
  const Delta delta = 0.9;
  EXPECT_TRUE(std::isfinite(delta));
  EXPECT_DOUBLE_EQ(std::sqrt(1.0 - delta), std::sqrt(0.1));
  std::ostringstream os;
  os << delta;
  EXPECT_EQ(os.str(), "0.9");
}

TEST(UnitsTest, DefaultConstructedUnitIsZero) {
  EXPECT_DOUBLE_EQ(Epsilon{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Probability{}.value(), 0.0);
}

TEST(UnitsTest, RawExposesValueOnlyThroughGet) {
  const Raw<double> raw(41.5);
  EXPECT_DOUBLE_EQ(raw.get(), 41.5);
  EXPECT_DOUBLE_EQ(Raw<double>{}.get(), 0.0);
}

TEST(UnitsTest, DefaultReleasedCarriesZero) {
  const Released<double> released;
  EXPECT_DOUBLE_EQ(released.value(), 0.0);
  const double read = released;  // implicit read-out is the whole point
  EXPECT_DOUBLE_EQ(read, 0.0);
}

// The one legitimate Raw -> Released path: through a DP mechanism.  The
// typed perturb overload consumes a Raw and mints a Released whose value
// is the raw estimate plus Laplace noise — same noise stream as the
// double overload given the same rng state.
TEST(UnitsTest, ReleasedIsMintedOnlyByTheMechanism) {
  const dp::LaplaceMechanism mech(1.0, 0.7);
  Rng rng_typed(123);
  Rng rng_plain(123);
  const Raw<double> raw(100.0);
  const Released<double> released = mech.perturb(raw, rng_typed);
  const double expected = mech.perturb(100.0, rng_plain);
  EXPECT_DOUBLE_EQ(released.value(), expected);
  EXPECT_NE(released.value(), raw.get());  // noise was actually added
}

// ---------------------------------------------------------------------------
// Round-trip: the typed quantities survive the optimizer's (alpha', delta')
// plan selection and the accuracy formulas, with each field carrying the
// unit the paper assigns it.
// ---------------------------------------------------------------------------

TEST(UnitsTest, OptimizerPlanRoundTripKeepsUnitsCoherent) {
  constexpr std::size_t kNodes = 8;
  constexpr std::size_t kTotal = 17568;
  const query::AccuracySpec spec{0.1, 0.9};
  const dp::PerturbationOptimizer optimizer;
  const Probability p =
      optimizer.minimum_feasible_probability(spec, kNodes, kTotal);
  const auto plan = optimizer.optimize(spec, p, kNodes, kTotal);
  ASSERT_TRUE(plan.has_value());

  // Same-unit comparisons: contract vs intermediate accuracy split.
  EXPECT_LT(plan->alpha_prime, plan->alpha);
  EXPECT_GT(plan->delta_prime, plan->delta);
  // Cross-unit on purpose: the Lemma 3.4 amplification check (eps' < eps
  // whenever p < 1) has to read through .value().
  EXPECT_LT(plan->epsilon_amplified.value(), plan->epsilon.value());

  // The plan's delta' must reproduce from its own (p, alpha') via the
  // Theorem 3.3 formula — units flow through achieved_delta unchanged.
  const Delta recomputed = estimator::achieved_delta(
      plan->sampling_probability, plan->alpha_prime, kNodes, kTotal);
  EXPECT_NEAR(recomputed.value(), plan->delta_prime.value(), 1e-12);

  // And the amplified budget must reproduce from (epsilon, p) via the
  // Lemma 3.4 formula.
  const EffectiveEpsilon recomputed_amp =
      dp::amplified_epsilon(plan->epsilon, plan->sampling_probability);
  EXPECT_NEAR(recomputed_amp.value(), plan->epsilon_amplified.value(), 1e-12);

  // Inverting the amplification recovers the base epsilon (same unit).
  const Epsilon recovered = dp::base_epsilon_for_amplified(
      plan->epsilon_amplified, plan->sampling_probability);
  EXPECT_NEAR(recovered.value(), plan->epsilon.value(), 1e-9);
}

TEST(UnitsTest, CompositionSumsEffectiveEpsilons) {
  const std::vector<EffectiveEpsilon> parts = {0.1, 0.2, 0.3};
  const EffectiveEpsilon total = dp::compose_sequential(parts);
  EXPECT_NEAR(total.value(), 0.6, 1e-12);
}

}  // namespace
}  // namespace prc::units
