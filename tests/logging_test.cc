#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace prc {
namespace {

/// Captures stderr around a callback.
template <typename Fn>
std::string capture_stderr(Fn&& fn) {
  ::testing::internal::CaptureStderr();
  fn();
  return ::testing::internal::GetCapturedStderr();
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelFilterSuppressesBelowThreshold) {
  set_log_level(LogLevel::kWarn);
  const std::string out = capture_stderr([] {
    PRC_LOG_DEBUG << "debug hidden";
    PRC_LOG_INFO << "info hidden";
    PRC_LOG_WARN << "warn shown";
    PRC_LOG_ERROR << "error shown";
  });
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("[WARN] warn shown"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] error shown"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  const std::string out = capture_stderr([] {
    PRC_LOG_ERROR << "nope";
  });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, StreamStyleComposesValues) {
  set_log_level(LogLevel::kInfo);
  const std::string out = capture_stderr([] {
    PRC_LOG_INFO << "x=" << 42 << " y=" << 1.5;
  });
  EXPECT_NE(out.find("[INFO] x=42 y=1.5"), std::string::npos);
}

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

}  // namespace
}  // namespace prc
