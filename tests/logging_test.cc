#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace prc {
namespace {

/// Captures stderr around a callback.
template <typename Fn>
std::string capture_stderr(Fn&& fn) {
  ::testing::internal::CaptureStderr();
  fn();
  return ::testing::internal::GetCapturedStderr();
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelFilterSuppressesBelowThreshold) {
  set_log_level(LogLevel::kWarn);
  const std::string out = capture_stderr([] {
    PRC_LOG_DEBUG << "debug hidden";
    PRC_LOG_INFO << "info hidden";
    PRC_LOG_WARN << "warn shown";
    PRC_LOG_ERROR << "error shown";
  });
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("[WARN] warn shown"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] error shown"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  const std::string out = capture_stderr([] {
    PRC_LOG_ERROR << "nope";
  });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, StreamStyleComposesValues) {
  set_log_level(LogLevel::kInfo);
  const std::string out = capture_stderr([] {
    PRC_LOG_INFO << "x=" << 42 << " y=" << 1.5;
  });
  EXPECT_NE(out.find("[INFO] x=42 y=1.5"), std::string::npos);
}

// Expensive-to-format type that counts how many times it is streamed.
struct CountingOperand {
  mutable int* formats;
};

std::ostream& operator<<(std::ostream& out, const CountingOperand& operand) {
  ++*operand.formats;
  return out << "formatted";
}

TEST_F(LoggingTest, NoFormattingBelowThreshold) {
  // The level gate runs BEFORE the LogLine is built: a suppressed statement
  // must not evaluate its operands, let alone format them.
  set_log_level(LogLevel::kWarn);
  int formats = 0;
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return CountingOperand{&formats};
  };
  PRC_LOG_DEBUG << expensive();
  PRC_LOG_INFO << expensive();
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(formats, 0);
  const std::string out =
      capture_stderr([&] { PRC_LOG_WARN << expensive(); });
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(formats, 1);
  EXPECT_NE(out.find("[WARN] formatted"), std::string::npos);
}

TEST_F(LoggingTest, LogEnabledMatchesTheFilter) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

}  // namespace
}  // namespace prc
