// Tests for the contract layer itself (src/common/check.h) plus one
// firing-proof per layer invariant documented in DESIGN.md: each guarantee
// the paper's theorems rely on has a test here demonstrating that the
// corresponding runtime contract actually fires when violated.

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "common/check.h"
#include "dp/amplification.h"
#include "dp/laplace_mechanism.h"
#include "market/ledger.h"
#include "pricing/pricing.h"
#include "pricing/variance_model.h"
#include "query/range_query.h"

namespace prc {
namespace {

// ---------------------------------------------------------------------------
// The macros themselves.

TEST(PrcCheck, PassingCheckIsSilent) {
  PRC_CHECK(1 + 1 == 2) << "never evaluated";
  SUCCEED();
}

TEST(PrcCheck, FailingCheckThrowsContractViolation) {
  EXPECT_THROW(PRC_CHECK(false) << "boom", ContractViolation);
}

TEST(PrcCheck, MessageCarriesExpressionFileAndDetail) {
  try {
    const double p = -0.25;
    PRC_CHECK(p > 0.0) << "p=" << p;
    FAIL() << "check did not fire";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("p > 0.0"), std::string::npos) << what;
    EXPECT_NE(what.find("contracts_test.cc"), std::string::npos) << what;
    EXPECT_NE(what.find("p=-0.25"), std::string::npos) << what;
  }
}

TEST(PrcCheck, ViolationIsCatchableViaStandardHierarchy) {
  // Drop-in compatibility: pre-contract call sites caught
  // std::invalid_argument / std::logic_error.
  EXPECT_THROW(PRC_CHECK(false), std::invalid_argument);
  EXPECT_THROW(PRC_CHECK(false), std::logic_error);
}

TEST(PrcDcheck, TracksBuildConfiguration) {
  if (PRC_DCHECK_IS_ON()) {
    EXPECT_THROW(PRC_DCHECK(false) << "debug-only", ContractViolation);
  } else {
    // Compiled out: the condition is not evaluated and the streamed
    // detail is swallowed.
    bool evaluated = false;
    PRC_DCHECK([&] {
      evaluated = true;
      return false;
    }()) << "swallowed";
    EXPECT_FALSE(evaluated);
  }
}

TEST(PrcCheckProb, AcceptsHalfOpenUnitInterval) {
  PRC_CHECK_PROB(1e-12);
  PRC_CHECK_PROB(0.5);
  PRC_CHECK_PROB(1.0);
  SUCCEED();
}

TEST(PrcCheckProb, RejectsZeroNegativeOversizedAndNan) {
  EXPECT_THROW(PRC_CHECK_PROB(0.0), ContractViolation);
  EXPECT_THROW(PRC_CHECK_PROB(-0.1), ContractViolation);
  EXPECT_THROW(PRC_CHECK_PROB(1.0 + 1e-9), ContractViolation);
  EXPECT_THROW(PRC_CHECK_PROB(std::nan("")), ContractViolation);
}

TEST(PrcCheckFinite, RejectsNanAndInfinity) {
  PRC_CHECK_FINITE(0.0);
  EXPECT_THROW(PRC_CHECK_FINITE(std::nan("")), ContractViolation);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(PRC_CHECK_FINITE(inf), ContractViolation);
  EXPECT_THROW(PRC_CHECK_FINITE(-inf), ContractViolation);
}

TEST(ContractsDeathTest, AbortModeDiesAtTheViolation) {
  // The mode flip happens inside the death-test child so the parent
  // process keeps the default throw mode.
  EXPECT_DEATH(
      {
        contracts::set_failure_mode(contracts::FailureMode::kAbort);
        PRC_CHECK(2 < 1) << "sanitizer-style hard stop";
      },
      "contract violated");
}

TEST(Contracts, FailureModeRoundTrips) {
  const auto original = contracts::failure_mode();
  contracts::set_failure_mode(contracts::FailureMode::kAbort);
  EXPECT_EQ(contracts::failure_mode(), contracts::FailureMode::kAbort);
  contracts::set_failure_mode(original);
  EXPECT_EQ(contracts::failure_mode(), original);
}

// ---------------------------------------------------------------------------
// One firing-proof per layer invariant (the DESIGN.md contract table).

// Sampling layer: Horvitz–Thompson inclusion probabilities live in (0, 1].
TEST(LayerInvariants, BadSamplingProbabilityFires) {
  EXPECT_THROW(
      dp::sensitivity_for(dp::SensitivityPolicy::kExpected, 0.0, 1),
      ContractViolation);
  EXPECT_THROW(dp::amplified_epsilon(0.5, 1.5), ContractViolation);
}

// DP layer: epsilon must be finite and positive at every mechanism entry.
TEST(LayerInvariants, NegativeEpsilonFires) {
  EXPECT_THROW(dp::LaplaceMechanism(1.0, -0.5), ContractViolation);
  EXPECT_THROW(dp::LaplaceMechanism(1.0, 0.0), ContractViolation);
  EXPECT_THROW(dp::base_epsilon_for_amplified(-1.0, 0.5), ContractViolation);
}

// Query layer: accuracy contracts need alpha in (0, 1], delta in (0, 1).
TEST(LayerInvariants, InvalidAccuracySpecFires) {
  EXPECT_THROW(query::AccuracySpec({-0.1, 0.5}).validate(),
               ContractViolation);
  EXPECT_THROW(query::AccuracySpec({0.1, 1.0}).validate(), ContractViolation);
}

// Market layer: the ledger refuses records that would corrupt the budget
// conservation audit, and the audit itself stays at zero discrepancy.
TEST(LayerInvariants, InvalidLedgerRecordFires) {
  market::Ledger ledger;
  market::Transaction bad;
  bad.consumer_id = "c";
  bad.price = -1.0;
  bad.epsilon_amplified = 0.1;
  bad.coverage = 1.0;
  EXPECT_THROW(ledger.record(bad), ContractViolation);
  bad.price = 1.0;
  bad.epsilon_amplified = -0.1;
  EXPECT_THROW(ledger.record(bad), ContractViolation);
  bad.epsilon_amplified = 0.1;
  bad.coverage = 1.5;
  EXPECT_THROW(ledger.record(bad), ContractViolation);

  market::Transaction good = bad;
  good.coverage = 0.9;
  ledger.record(good);
  ledger.record(good);
  EXPECT_EQ(ledger.transaction_count(), 2u);
  EXPECT_NEAR(ledger.conservation_discrepancy(), 0.0, 1e-12);
}

// Pricing layer: a power-family menu with q != 1 is not arbitrage-avoiding
// and must fail the Theorem 4.2 re-validation; q == 1 must pass it.
TEST(LayerInvariants, NonUnitExponentMenuFires) {
  const pricing::VarianceModel model(10000, 16);
  const query::AccuracySpec reference{0.1, 0.8};

  const pricing::InverseVariancePricing q2(model, reference, 10.0, 2.0);
  EXPECT_THROW(pricing::validate_arbitrage_conditions(model, q2),
               ContractViolation);
  const pricing::InverseVariancePricing q_half(model, reference, 10.0, 0.5);
  EXPECT_THROW(pricing::validate_arbitrage_conditions(model, q_half),
               ContractViolation);
  const pricing::LinearDiscountPricing sheet(5.0, 2.0, 3.0);
  EXPECT_THROW(pricing::validate_arbitrage_conditions(model, sheet),
               ContractViolation);

  // The theorem family itself re-validates on construction and passes.
  EXPECT_NO_THROW(pricing::InverseVariancePricing(model, reference, 10.0));
  EXPECT_NO_THROW(pricing::FittedTheoremPricing(model, 1234.5));
}

}  // namespace
}  // namespace prc
