// End-to-end telemetry: one broker session (collection -> DP -> pricing ->
// market, the prc_query `session` flow) must populate the process-wide
// registry with non-zero metrics from all four layers and a trace with
// >= 3 nested span levels, and the snapshot must survive a JSON round-trip.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "dp/private_counting.h"
#include "iot/network.h"
#include "market/broker.h"
#include "pricing/pricing.h"
#include "pricing/variance_model.h"
#include "query/range_query.h"

namespace prc {
namespace {

std::vector<std::vector<double>> synthetic_node_data(std::size_t nodes,
                                                     std::size_t per_node,
                                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> data(nodes);
  for (auto& node : data) {
    node.reserve(per_node);
    for (std::size_t i = 0; i < per_node; ++i) {
      node.push_back(rng.uniform() * 200.0);
    }
  }
  return data;
}

std::uint64_t counter_value(const telemetry::TelemetrySnapshot& snap,
                            const std::string& name) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

TEST(TelemetryIntegrationTest, SessionPopulatesAllFourLayers) {
  telemetry::Telemetry::registry().reset();
  trace::Tracer::instance().set_enabled(true);
  trace::Tracer::instance().clear();

  constexpr std::size_t kNodes = 8;
  constexpr std::size_t kPerNode = 250;
  iot::FlatNetwork network(synthetic_node_data(kNodes, kPerNode, 11), {});
  dp::PrivateRangeCounter counter(network, {}, 13);
  const pricing::VarianceModel model(kNodes * kPerNode, kNodes);
  auto pricing_fn = std::make_unique<pricing::InverseVariancePricing>(
      model, query::AccuracySpec{0.1, 0.5}, 100.0, 1.0);
  market::BrokerConfig config;
  config.per_consumer_epsilon_cap = 10.0;
  market::DataBroker broker(counter, std::move(pricing_fn), config);

  const query::RangeQuery range{50.0, 150.0};
  const query::AccuracySpec spec{0.05, 0.8};
  (void)broker.quote(spec);
  for (int i = 0; i < 2; ++i) {
    (void)broker.sell("consumer-" + std::to_string(i), range, spec);
  }

  const auto snap = telemetry::Telemetry::registry().snapshot();

  // Acceptance floor: >= 20 distinct metrics spanning all four layers.
  EXPECT_GE(snap.metric_count(), 20u);
  EXPECT_TRUE(snap.has_prefix("iot."));
  EXPECT_TRUE(snap.has_prefix("dp."));
  EXPECT_TRUE(snap.has_prefix("pricing."));
  EXPECT_TRUE(snap.has_prefix("market."));

  // The load-bearing per-layer counters are non-zero.
  EXPECT_GT(counter_value(snap, "iot.rounds"), 0u);
  EXPECT_GT(counter_value(snap, "iot.frames_delivered"), 0u);
  EXPECT_GT(counter_value(snap, "dp.answers"), 0u);
  EXPECT_GT(counter_value(snap, "dp.optimize_calls"), 0u);
  EXPECT_GT(counter_value(snap, "dp.laplace_draws"), 0u);
  EXPECT_GT(counter_value(snap, "pricing.quotes"), 0u);
  EXPECT_GT(counter_value(snap, "pricing.menu_validations"), 0u);
  EXPECT_EQ(counter_value(snap, "market.sales"), 2u);
  EXPECT_EQ(counter_value(snap, "market.ledger_transactions"), 2u);

  // Released-budget accounting: the gauge tracks the ledger exactly.
  double epsilon_gauge = 0.0;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "market.epsilon_spent_total") epsilon_gauge = value;
  }
  EXPECT_DOUBLE_EQ(epsilon_gauge, broker.ledger().total_epsilon());

  // Durations were recorded for each layer's span-of-work.
  const auto hist_count = [&](const std::string& name) -> std::uint64_t {
    for (const auto& hist : snap.histograms) {
      if (hist.name == name) return hist.count;
    }
    return 0;
  };
  EXPECT_GT(hist_count("iot.round_duration_us"), 0u);
  EXPECT_GT(hist_count("dp.answer_duration_us"), 0u);
  EXPECT_GT(hist_count("market.sell_duration_us"), 0u);
  EXPECT_GT(hist_count("market.sale_price"), 0u);

  // The snapshot survives a JSON round-trip intact.
  const auto parsed = telemetry::TelemetrySnapshot::from_json(snap.to_json());
  EXPECT_EQ(parsed.metric_count(), snap.metric_count());
  EXPECT_EQ(parsed.counters, snap.counters);

  // The trace shows the full nesting: market.sell -> dp.answer ->
  // dp.ensure_feasible_plan -> iot.round, i.e. >= 3 nested levels.
  const auto spans = trace::Tracer::instance().snapshot();
  std::uint32_t max_depth = 0;
  for (const auto& span : spans) max_depth = std::max(max_depth, span.depth);
  EXPECT_GE(max_depth, 3u);
  const auto has_span = [&](const std::string& name) {
    return std::any_of(spans.begin(), spans.end(),
                       [&](const trace::SpanRecord& span) {
                         return span.name == name;
                       });
  };
  EXPECT_TRUE(has_span("market.sell"));
  EXPECT_TRUE(has_span("dp.answer"));
  EXPECT_TRUE(has_span("iot.round"));
}

TEST(TelemetryIntegrationTest, RefusedSaleCountsARefusalAndNoSale) {
  telemetry::Telemetry::registry().reset();

  constexpr std::size_t kNodes = 4;
  iot::FlatNetwork network(synthetic_node_data(kNodes, 100, 21), {});
  dp::PrivateRangeCounter counter(network, {}, 23);
  const pricing::VarianceModel model(kNodes * 100, kNodes);
  auto pricing_fn = std::make_unique<pricing::InverseVariancePricing>(
      model, query::AccuracySpec{0.1, 0.5}, 100.0, 1.0);
  market::BrokerConfig config;
  config.per_consumer_epsilon_cap = 1e-9;  // everything exceeds this
  market::DataBroker broker(counter, std::move(pricing_fn), config);

  EXPECT_THROW(broker.sell("c", query::RangeQuery{10.0, 90.0},
                           query::AccuracySpec{0.05, 0.8}),
               market::BudgetExceededError);

  const auto snap = telemetry::Telemetry::registry().snapshot();
  EXPECT_EQ(counter_value(snap, "market.sale_attempts"), 1u);
  EXPECT_EQ(counter_value(snap, "market.refusals_budget"), 1u);
  EXPECT_EQ(counter_value(snap, "market.sales"), 0u);
}

}  // namespace
}  // namespace prc
