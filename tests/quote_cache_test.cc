// Quote-cache contract: a hit returns exactly the double the underlying
// pricing function computes (receipts cannot drift between cached and
// direct pricing), eviction is least-recently-used, capacity 0 disables the
// memo, the cache is coherent under concurrent pricing, and the broker
// actually routes its quotes through it.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/telemetry.h"
#include "data/partition.h"
#include "dp/private_counting.h"
#include "iot/network.h"
#include "market/broker.h"
#include "pricing/pricing.h"
#include "pricing/quote_cache.h"
#include "pricing/variance_model.h"

namespace prc::pricing {
namespace {

constexpr std::size_t kNodes = 8;
constexpr std::size_t kTotal = 17568;
const query::AccuracySpec kReference{0.1, 0.5};

InverseVariancePricing make_pricing() {
  return InverseVariancePricing(VarianceModel(kTotal, kNodes), kReference,
                                100.0, 1.0);
}

std::uint64_t bits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

TEST(QuoteCacheTest, HitReturnsTheExactMissPrice) {
  const auto pricing = make_pricing();
  const QuoteCache cache(pricing, 16);
  auto& hits = telemetry::counter("pricing.quote_cache_hits");
  auto& misses = telemetry::counter("pricing.quote_cache_misses");
  auto& quotes = telemetry::counter("pricing.quotes");

  const query::AccuracySpec spec{0.07, 0.8};
  const auto hits0 = hits.value();
  const auto misses0 = misses.value();

  const double direct = pricing.price(spec);
  const double first = cache.price(spec);
  EXPECT_EQ(misses.value(), misses0 + 1);

  const auto quotes1 = quotes.value();
  const double second = cache.price(spec);
  EXPECT_EQ(hits.value(), hits0 + 1);
  // The hit did not evaluate the pricing function again.
  EXPECT_EQ(quotes.value(), quotes1);
  EXPECT_EQ(bits(first), bits(direct));
  EXPECT_EQ(bits(second), bits(direct));
}

TEST(QuoteCacheTest, EvictsLeastRecentlyUsed) {
  const auto pricing = make_pricing();
  const QuoteCache cache(pricing, 2);
  auto& misses = telemetry::counter("pricing.quote_cache_misses");

  const query::AccuracySpec a{0.05, 0.8};
  const query::AccuracySpec b{0.06, 0.8};
  const query::AccuracySpec c{0.07, 0.8};
  (void)cache.price(a);
  (void)cache.price(b);
  (void)cache.price(a);  // refresh a: b is now the LRU entry
  (void)cache.price(c);  // evicts b
  EXPECT_EQ(cache.size(), 2u);

  const auto misses0 = misses.value();
  (void)cache.price(a);  // still cached
  EXPECT_EQ(misses.value(), misses0);
  (void)cache.price(b);  // evicted: must re-price
  EXPECT_EQ(misses.value(), misses0 + 1);
}

TEST(QuoteCacheTest, CapacityZeroDisablesMemoization) {
  const auto pricing = make_pricing();
  const QuoteCache cache(pricing, 0);
  auto& misses = telemetry::counter("pricing.quote_cache_misses");
  const auto misses0 = misses.value();
  const query::AccuracySpec spec{0.07, 0.8};
  const double first = cache.price(spec);
  const double second = cache.price(spec);
  EXPECT_EQ(misses.value(), misses0 + 2);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(bits(first), bits(second));
}

TEST(QuoteCacheTest, ConcurrentPricingMatchesDirectPricing) {
  const auto pricing = make_pricing();
  const QuoteCache cache(pricing, 8);
  std::vector<query::AccuracySpec> specs;
  std::vector<double> expected;
  Rng rng(99);
  for (int i = 0; i < 16; ++i) {
    specs.push_back({rng.uniform(0.02, 0.2), rng.uniform(0.4, 0.95)});
    expected.push_back(pricing.price(specs.back()));
  }

  constexpr int kThreads = 8;
  constexpr int kIterations = 400;
  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::size_t index = (t * 7 + i) % specs.size();
        // Bit-pattern equality IS the property under test: a cached price
        // must be the exact double direct pricing computes.
        if (bits(cache.price(specs[index])) !=  // lint:allow float-eq
            bits(expected[index])) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

TEST(QuoteCacheTest, BrokerRoutesQuotesThroughTheCache) {
  std::vector<double> values(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) values[i] = static_cast<double>(i);
  Rng rng(3);
  iot::FlatNetwork network(data::partition_values(
      values, kNodes, data::PartitionStrategy::kRoundRobin, rng));
  dp::PrivateRangeCounter counter(network);
  const market::DataBroker broker(
      counter, std::make_unique<InverseVariancePricing>(
                   VarianceModel(kTotal, kNodes), kReference, 100.0, 1.0));

  static telemetry::Counter& market_quotes =
      telemetry::counter("market.quotes");
  static telemetry::Counter& price_evals = telemetry::counter("pricing.quotes");

  const query::AccuracySpec spec{0.07, 0.8};
  const double first = broker.quote(spec);

  const auto market0 = market_quotes.value();
  const auto evals0 = price_evals.value();
  const double second = broker.quote(spec);
  // Every quote() call counts as a market quote, but the repeated contract
  // is served from the memo without re-evaluating the pricing function.
  EXPECT_EQ(market_quotes.value(), market0 + 1);
  EXPECT_EQ(price_evals.value(), evals0);
  EXPECT_EQ(bits(first), bits(second));
  EXPECT_GE(broker.quote_cache().size(), 1u);
}

}  // namespace
}  // namespace prc::pricing
