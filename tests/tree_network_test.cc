#include "iot/tree_network.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/private_counting.h"
#include "query/range_query.h"

namespace prc::iot {
namespace {

std::vector<std::vector<double>> grid_node_data(std::size_t nodes,
                                                std::size_t per_node) {
  std::vector<std::vector<double>> data(nodes);
  double v = 0.0;
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = 0; j < per_node; ++j) data[i].push_back(v += 1.0);
  }
  return data;
}

TEST(TreeNetworkTest, ConstructionValidation) {
  EXPECT_THROW(TreeNetwork({}), std::invalid_argument);
  TreeConfig bad_fanout;
  bad_fanout.fanout = 0;
  EXPECT_THROW(TreeNetwork(grid_node_data(2, 5), bad_fanout),
               std::invalid_argument);
  TreeConfig bad_loss;
  bad_loss.frame_loss_probability = 1.0;
  EXPECT_THROW(TreeNetwork(grid_node_data(2, 5), bad_loss),
               std::invalid_argument);
}

TEST(TreeNetworkTest, DepthsFollowBalancedLayout) {
  // fanout 2, 6 nodes: slots 1..6; depths 1,1,2,2,2,2.
  TreeConfig config;
  config.fanout = 2;
  TreeNetwork network(grid_node_data(6, 10), config);
  EXPECT_EQ(network.depth(0), 1u);
  EXPECT_EQ(network.depth(1), 1u);
  EXPECT_EQ(network.depth(2), 2u);
  EXPECT_EQ(network.depth(5), 2u);
  EXPECT_EQ(network.height(), 2u);
  EXPECT_THROW(network.depth(6), std::out_of_range);
}

TEST(TreeNetworkTest, ChainTopologyHasLinearDepth) {
  TreeConfig config;
  config.fanout = 1;
  TreeNetwork network(grid_node_data(5, 10), config);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(network.depth(i), i + 1);
  }
}

TEST(TreeNetworkTest, EstimatesMatchGroundTruth) {
  TreeNetwork network(grid_node_data(8, 1000));
  network.ensure_sampling_probability(0.4);
  const query::RangeQuery range{1000.5, 7000.5};
  const double bound = 10.0 * std::sqrt(8.0 * 8.0) / 0.4;
  EXPECT_NEAR(network.rank_counting_estimate(range), 6000.0, bound);
  EXPECT_EQ(network.base_station().total_data_count(), 8000u);
}

TEST(TreeNetworkTest, TopologyDoesNotChangeSampling) {
  // Same seed, different fanout: identical samples reach the base station,
  // so the estimates coincide exactly — only the byte bill differs.
  TreeConfig wide;
  wide.fanout = 8;
  wide.seed = 99;
  TreeConfig deep;
  deep.fanout = 2;
  deep.seed = 99;
  TreeNetwork a(grid_node_data(8, 500), wide);
  TreeNetwork b(grid_node_data(8, 500), deep);
  a.ensure_sampling_probability(0.3);
  b.ensure_sampling_probability(0.3);
  const query::RangeQuery range{100.5, 3000.5};
  EXPECT_DOUBLE_EQ(a.rank_counting_estimate(range),
                   b.rank_counting_estimate(range));
  // The deeper tree relays over more links.
  EXPECT_GT(b.stats().uplink_bytes, a.stats().uplink_bytes);
}

TEST(TreeNetworkTest, AggregationSavesBytesOverStoreAndForward) {
  TreeConfig aggregated;
  aggregated.fanout = 2;
  aggregated.seed = 5;
  aggregated.aggregate_frames = true;
  TreeConfig naive;
  naive.fanout = 2;
  naive.seed = 5;
  naive.aggregate_frames = false;
  TreeNetwork a(grid_node_data(14, 800), aggregated);
  TreeNetwork b(grid_node_data(14, 800), naive);
  a.ensure_sampling_probability(0.2);
  b.ensure_sampling_probability(0.2);
  // Identical sample payloads, but the naive relay repeats headers per hop
  // and per origin.
  EXPECT_EQ(a.stats().samples_transferred, b.stats().samples_transferred);
  EXPECT_LT(a.stats().uplink_bytes, b.stats().uplink_bytes);
}

TEST(TreeNetworkTest, LevelStatsAccountEveryByte) {
  TreeConfig config;
  config.fanout = 2;
  TreeNetwork network(grid_node_data(10, 300), config);
  network.ensure_sampling_probability(0.25);
  std::size_t level_total = 0;
  for (const auto& level : network.level_stats()) level_total += level.bytes;
  EXPECT_EQ(level_total, network.stats().uplink_bytes);
  // Level 1 (links into the base station) carries the full convergecast, so
  // it must be the heaviest.
  const auto& levels = network.level_stats();
  for (std::size_t l = 2; l < levels.size(); ++l) {
    EXPECT_GE(levels[1].bytes, levels[l].bytes);
  }
}

TEST(TreeNetworkTest, LossIsChargedAndConsistent) {
  TreeConfig lossy;
  lossy.fanout = 2;
  lossy.frame_loss_probability = 0.3;
  lossy.seed = 11;
  TreeConfig clean = lossy;
  clean.frame_loss_probability = 0.0;
  TreeNetwork a(grid_node_data(24, 400), lossy);
  TreeNetwork b(grid_node_data(24, 400), clean);
  a.ensure_sampling_probability(0.3);
  b.ensure_sampling_probability(0.3);
  EXPECT_GT(a.stats().retransmissions, 0u);
  EXPECT_GT(a.stats().uplink_bytes, b.stats().uplink_bytes);
  EXPECT_EQ(a.base_station().total_data_count(), 9600u);
}

TEST(TreeNetworkTest, IncrementalRoundsAccumulate) {
  TreeNetwork network(grid_node_data(4, 500));
  const auto first = network.ensure_sampling_probability(0.1).new_samples;
  EXPECT_EQ(network.ensure_sampling_probability(0.1).new_samples, 0u);
  const auto second = network.ensure_sampling_probability(0.3).new_samples;
  EXPECT_GT(second, 0u);
  EXPECT_EQ(network.base_station().cached_sample_count(), first + second);
}

TEST(TreeNetworkTest, PrivateCountingRunsOverTrees) {
  // The DP pipeline is topology-independent through SamplingNetwork: the
  // same PrivateRangeCounter serves contracts over a tree.
  TreeConfig config;
  config.fanout = 3;
  TreeNetwork network(grid_node_data(9, 2000), config);
  dp::PrivateRangeCounter counter(network, {}, 77);
  const query::AccuracySpec spec{0.05, 0.8};
  const auto answer = counter.answer({2000.5, 16000.5}, spec);
  EXPECT_GT(answer.plan.epsilon_amplified, 0.0);
  // Single draw vs the 3x contract envelope.
  EXPECT_NEAR(answer.value, 14000.0, 3.0 * spec.alpha * 18000.0);
  // The top-up was routed through the tree (bytes were charged).
  EXPECT_GT(network.stats().uplink_bytes, 0u);
}

TEST(TreeNetworkTest, ContractHoldsOverTreesEmpirically) {
  const query::AccuracySpec spec{0.08, 0.7};
  const query::RangeQuery range{1000.5, 15000.5};
  const double truth = 14000.0;
  int within = 0;
  const int trials = 150;
  for (int t = 0; t < trials; ++t) {
    TreeConfig config;
    config.fanout = 2;
    config.seed = static_cast<std::uint64_t>(t) * 7 + 5;
    TreeNetwork network(grid_node_data(8, 2250), config);
    dp::PrivateRangeCounter counter(network, {},
                                    static_cast<std::uint64_t>(t) + 31);
    const auto answer = counter.answer(range, spec);
    if (std::abs(answer.value - truth) <= spec.alpha * 18000.0) ++within;
  }
  const double margin =
      3.0 * std::sqrt(spec.delta * (1 - spec.delta) / trials);
  EXPECT_GE(static_cast<double>(within) / trials, spec.delta - margin);
}

TEST(TreeNetworkTest, RejectsInvalidProbability) {
  TreeNetwork network(grid_node_data(2, 10));
  EXPECT_THROW(network.ensure_sampling_probability(0.0),
               std::invalid_argument);
  EXPECT_THROW(network.ensure_sampling_probability(1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace prc::iot
