// Tests for the histogram-sketch baseline and rank-sample quantile
// estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"
#include "estimator/histogram_sketch.h"
#include "estimator/quantile.h"
#include "sampling/local_sampler.h"

namespace prc::estimator {
namespace {

// --- HistogramSketch --------------------------------------------------------

TEST(HistogramSketchTest, ConstructionValidation) {
  EXPECT_THROW(HistogramSketch(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(HistogramSketch(1.0, 0.0, 4), std::invalid_argument);
}

TEST(HistogramSketchTest, ExactOnBinAlignedRanges) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i * 0.1);  // [0, 100)
  const HistogramSketch sketch(values, 0.0, 100.0, 10);
  EXPECT_EQ(sketch.total_count(), 1000u);
  // [10, 30) covers bins 1 and 2 fully: 200 values.
  EXPECT_NEAR(sketch.estimate({10.0, 30.0 - 1e-9}), 200.0, 1.0);
  EXPECT_NEAR(sketch.estimate({0.0, 100.0}), 1000.0, 1e-9);
}

TEST(HistogramSketchTest, InterpolatesPartialBins) {
  // Uniform data: interpolation is nearly exact.
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i * 0.01);  // [0, 100)
  const HistogramSketch sketch(values, 0.0, 100.0, 20);
  const query::RangeQuery q{12.5, 87.5};
  double truth = 0.0;
  for (double v : values) {
    if (q.contains(v)) truth += 1.0;
  }
  EXPECT_NEAR(sketch.estimate(q), truth, truth * 0.01);
}

TEST(HistogramSketchTest, ErrorBoundCoversSkewInsideBins) {
  // All mass at one point inside a bin: interpolation is badly wrong but
  // the error bound (boundary-bin mass) covers it.
  std::vector<double> values(1000, 5.01);
  const HistogramSketch sketch(values, 0.0, 100.0, 10);
  const query::RangeQuery q{5.02, 50.0};  // excludes every value
  const double estimate = sketch.estimate(q);
  EXPECT_LE(std::abs(estimate - 0.0), sketch.error_bound(q) + 1e-9);
  EXPECT_EQ(sketch.error_bound(q), 1000.0);
}

TEST(HistogramSketchTest, MergeAggregatesNodes) {
  const HistogramSketch a({1.0, 2.0, 3.0}, 0.0, 10.0, 5);
  const HistogramSketch b({7.0, 8.0}, 0.0, 10.0, 5);
  HistogramSketch merged(0.0, 10.0, 5);
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.total_count(), 5u);
  EXPECT_NEAR(merged.estimate({0.0, 10.0}), 5.0, 1e-9);
  const HistogramSketch mismatched(0.0, 20.0, 5);
  EXPECT_THROW(merged.merge(mismatched), std::invalid_argument);
}

TEST(HistogramSketchTest, OutOfDomainValuesClampToEdges) {
  const HistogramSketch sketch({-5.0, 105.0}, 0.0, 100.0, 10);
  EXPECT_EQ(sketch.total_count(), 2u);
  EXPECT_NEAR(sketch.estimate({0.0, 100.0}), 2.0, 1e-9);
}

TEST(HistogramSketchTest, WireSizeIsFixed) {
  const HistogramSketch small({1.0}, 0.0, 1.0, 32);
  std::vector<double> many(100000, 0.5);
  const HistogramSketch big(many, 0.0, 1.0, 32);
  EXPECT_EQ(small.wire_size(), big.wire_size());
  EXPECT_EQ(small.wire_size(), 32u * sizeof(double));
}

// --- prefix / quantile estimation -------------------------------------------

TEST(PrefixEstimateTest, FormulaCases) {
  const sampling::RankSampleSet set({{2.0, 2}, {5.0, 5}, {9.0, 9}});
  // successor of 3.0 is 5 (rank 5): estimate 5 - 1/p.
  EXPECT_DOUBLE_EQ(prefix_count_estimate(set, 10, 0.5, 3.0), 3.0);
  // successor of 9.5 missing: estimate n_i.
  EXPECT_DOUBLE_EQ(prefix_count_estimate(set, 10, 0.5, 9.5), 10.0);
  // successor of -1 is 2 (rank 2): estimate 2 - 1/p = 0.
  EXPECT_DOUBLE_EQ(prefix_count_estimate(set, 10, 0.5, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(prefix_count_estimate(set, 0, 0.5, 3.0), 0.0);
  EXPECT_THROW(prefix_count_estimate(set, 10, 0.0, 3.0),
               std::invalid_argument);
}

TEST(PrefixEstimateTest, UnbiasedWithBoundedVariance) {
  const std::size_t n = 300;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i + 1);
  const double p = 0.15;
  const double x = 175.5;  // true prefix = 175
  Rng rng(11);
  RunningStats stats;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    sampling::LocalSampler sampler(values);
    sampler.raise_probability(p, rng);
    stats.add(prefix_count_estimate(sampler.current_sample(), n, p, x));
  }
  EXPECT_NEAR(stats.mean(), 175.0,
              5.0 * std::sqrt(prefix_variance_bound(p) / trials));
  EXPECT_LE(stats.variance(), prefix_variance_bound(p) * 1.1);
}

TEST(QuantileEstimateTest, RecoversQuantilesOfUniformData) {
  const std::size_t k = 4;
  const std::size_t per_node = 2500;
  const double p = 0.2;
  std::vector<std::vector<double>> node_values(k);
  double v = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < per_node; ++j) {
      node_values[i].push_back(v += 1.0);  // global values 1..10000
    }
  }
  Rng rng(13);
  std::vector<sampling::RankSampleSet> sets;
  for (const auto& vals : node_values) {
    sampling::LocalSampler sampler(vals);
    sampler.raise_probability(p, rng);
    sets.push_back(sampler.current_sample());
  }
  std::vector<NodeSampleView> views;
  for (const auto& s : sets) views.push_back({&s, per_node});

  const double n = static_cast<double>(k * per_node);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double estimate = quantile_estimate(views, p, q, k * per_node);
    // Rank error is O(sqrt(k) / p) ~ 50; values are dense (1 per rank).
    EXPECT_NEAR(estimate, q * n, 6.0 * std::sqrt(4.0 * k) / p)
        << "q=" << q;
  }
}

TEST(QuantileEstimateTest, ExtremesAndValidation) {
  const sampling::RankSampleSet set({{2.0, 2}, {5.0, 5}, {9.0, 9}});
  const std::vector<NodeSampleView> views = {{&set, 10}};
  EXPECT_EQ(quantile_estimate(views, 0.5, 0.0, 10), 2.0);
  EXPECT_EQ(quantile_estimate(views, 0.5, 1.0, 10), 9.0);
  EXPECT_THROW(quantile_estimate(views, 0.5, 1.5, 10),
               std::invalid_argument);
  EXPECT_THROW(quantile_estimate(views, 0.5, 0.5, 0),
               std::invalid_argument);
  const sampling::RankSampleSet empty;
  const std::vector<NodeSampleView> empty_views = {{&empty, 10}};
  EXPECT_THROW(quantile_estimate(empty_views, 0.5, 0.5, 10),
               std::invalid_argument);
}

TEST(QuantileEstimateTest, GlobalPrefixSumsNodes) {
  const sampling::RankSampleSet a({{2.0, 2}});
  const sampling::RankSampleSet b({{4.0, 4}, {6.0, 6}});
  const std::vector<NodeSampleView> views = {{&a, 5}, {&b, 8}};
  const double expected = prefix_count_estimate(a, 5, 0.5, 3.0) +
                          prefix_count_estimate(b, 8, 0.5, 3.0);
  EXPECT_DOUBLE_EQ(global_prefix_estimate(views, 0.5, 3.0), expected);
}

}  // namespace
}  // namespace prc::estimator
