#include "dp/hierarchical.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/statistics.h"

namespace prc::dp {
namespace {

std::vector<double> dense_values(std::size_t n, double lo, double hi) {
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = lo + (hi - lo) * (static_cast<double>(i) + 0.5) /
                         static_cast<double>(n);
  }
  return values;
}

HierarchicalConfig exact_config(std::size_t levels) {
  HierarchicalConfig config;
  config.levels = levels;
  config.disable_noise = true;
  return config;
}

TEST(HierarchicalTest, ConstructionValidation) {
  Rng rng(1);
  const std::vector<double> values = {1.0};
  HierarchicalConfig bad_levels;
  bad_levels.levels = 0;
  EXPECT_THROW(HierarchicalMechanism(values, 0.0, 1.0, bad_levels, rng),
               std::invalid_argument);
  HierarchicalConfig bad_eps;
  bad_eps.epsilon = 0.0;
  EXPECT_THROW(HierarchicalMechanism(values, 0.0, 1.0, bad_eps, rng),
               std::invalid_argument);
  EXPECT_THROW(
      HierarchicalMechanism(values, 1.0, 1.0, HierarchicalConfig{}, rng),
      std::invalid_argument);
}

TEST(HierarchicalTest, ExactModeMatchesTruthOnAlignedRanges) {
  Rng rng(2);
  const auto values = dense_values(4096, 0.0, 100.0);
  const HierarchicalMechanism tree(values, 0.0, 100.0, exact_config(8), rng);
  // Leaf width = 100/256; query aligned to leaf boundaries is exact.
  const double w = 100.0 / 256.0;
  const query::RangeQuery aligned{16.0 * w, 64.0 * w - 1e-9};
  const double truth = 4096.0 * (64.0 - 16.0) / 256.0;
  EXPECT_NEAR(tree.query(aligned), truth, 1e-9);
}

TEST(HierarchicalTest, ExactModeFullDomain) {
  Rng rng(3);
  const auto values = dense_values(1000, 0.0, 10.0);
  const HierarchicalMechanism tree(values, 0.0, 10.0, exact_config(6), rng);
  EXPECT_NEAR(tree.query({0.0, 10.0}), 1000.0, 1e-9);
  EXPECT_NEAR(tree.query({-50.0, 50.0}), 1000.0, 1e-9);
  EXPECT_EQ(tree.query({20.0, 30.0}), 0.0);
}

TEST(HierarchicalTest, SnappingErrorBoundedByLeafMass) {
  Rng rng(4);
  const auto values = dense_values(4096, 0.0, 100.0);
  const HierarchicalMechanism tree(values, 0.0, 100.0, exact_config(8), rng);
  // Unaligned query: answer includes the full boundary leaves.
  const query::RangeQuery q{10.3, 57.9};
  double truth = 0.0;
  for (double v : values) {
    if (q.contains(v)) truth += 1.0;
  }
  const double per_leaf = 4096.0 / 256.0;
  EXPECT_NEAR(tree.query(q), truth, 2.0 * per_leaf);
}

TEST(HierarchicalTest, CanonicalDecompositionIsLogarithmic) {
  Rng rng(5);
  const auto values = dense_values(100, 0.0, 1.0);
  const HierarchicalMechanism tree(values, 0.0, 1.0, exact_config(10), rng);
  // Worst-case canonical cover of a dyadic tree is <= 2 * levels.
  EXPECT_LE(tree.canonical_nodes({0.0001, 0.9999}), 20u);
  EXPECT_EQ(tree.canonical_nodes({0.0, 1.0}), 1u);  // whole root
  EXPECT_GE(tree.canonical_nodes({0.1, 0.2}), 1u);
}

TEST(HierarchicalTest, NoiseScaleSplitsBudgetAcrossLevels) {
  Rng rng(6);
  const std::vector<double> values = {0.5};
  HierarchicalConfig config;
  config.levels = 9;
  config.epsilon = 2.0;
  const HierarchicalMechanism tree(values, 0.0, 1.0, config, rng);
  EXPECT_DOUBLE_EQ(tree.noise_scale(), 10.0 / 2.0);
}

TEST(HierarchicalTest, NoisyAnswersAreUnbiasedWithPredictedVariance) {
  const auto values = dense_values(2048, 0.0, 100.0);
  const query::RangeQuery q{12.5, 50.0 - 1e-9};  // leaf-aligned at levels=3
  HierarchicalConfig config;
  config.levels = 3;
  config.epsilon = 1.0;
  double truth = 0.0;
  for (double v : values) {
    if (q.contains(v)) truth += 1.0;
  }
  Rng rng(7);
  RunningStats stats;
  double predicted_variance = 0.0;
  for (int t = 0; t < 4000; ++t) {
    const HierarchicalMechanism tree(values, 0.0, 100.0, config, rng);
    stats.add(tree.query(q));
    predicted_variance = tree.noise_variance(q);
  }
  EXPECT_NEAR(stats.mean(), truth,
              5.0 * std::sqrt(predicted_variance / 4000.0));
  EXPECT_NEAR(stats.variance(), predicted_variance,
              predicted_variance * 0.15);
}

TEST(HierarchicalTest, SatisfiesDifferentialPrivacyEmpirically) {
  // Neighbors differ by one element; the whole-tree release is eps-DP, so
  // any query's output ratio is bounded by e^eps.
  const double epsilon = 1.0;
  HierarchicalConfig config;
  config.levels = 2;
  config.epsilon = epsilon;
  std::vector<double> d1(50, 0.3);
  std::vector<double> d2 = d1;
  d2.push_back(0.3);
  const query::RangeQuery q{0.0, 0.49};
  Rng rng(8);
  Histogram out1(30.0, 70.0, 20);
  Histogram out2(30.0, 70.0, 20);
  for (int t = 0; t < 200000; ++t) {
    out1.add(HierarchicalMechanism(d1, 0.0, 1.0, config, rng).query(q));
    out2.add(HierarchicalMechanism(d2, 0.0, 1.0, config, rng).query(q));
  }
  const double bound = std::exp(epsilon);
  for (std::size_t b = 0; b < out1.bins(); ++b) {
    if (out1.count(b) < 1000 || out2.count(b) < 1000) continue;
    const double ratio = out1.density(b) / out2.density(b);
    EXPECT_LE(ratio, bound * 1.15) << "bin " << b;
    EXPECT_GE(ratio, 1.0 / (bound * 1.15)) << "bin " << b;
  }
}

TEST(HierarchicalTest, DeeperTreesTradeResolutionForNoise) {
  // More levels: finer snapping but larger per-node noise.  Check both
  // directions of the trade-off.
  const auto values = dense_values(4096, 0.0, 100.0);
  Rng rng(9);
  HierarchicalConfig shallow;
  shallow.levels = 4;
  shallow.disable_noise = true;
  HierarchicalConfig deep;
  deep.levels = 12;
  deep.disable_noise = true;
  const HierarchicalMechanism a(values, 0.0, 100.0, shallow, rng);
  const HierarchicalMechanism b(values, 0.0, 100.0, deep, rng);
  const query::RangeQuery q{10.3, 57.9};
  double truth = 0.0;
  for (double v : values) {
    if (q.contains(v)) truth += 1.0;
  }
  // Deep tree snaps tighter.
  EXPECT_LT(std::abs(b.query(q) - truth), std::abs(a.query(q) - truth));
  // But pays more noise variance per query at equal epsilon.
  HierarchicalConfig shallow_noisy = shallow;
  shallow_noisy.disable_noise = false;
  HierarchicalConfig deep_noisy = deep;
  deep_noisy.disable_noise = false;
  const HierarchicalMechanism an(values, 0.0, 100.0, shallow_noisy, rng);
  const HierarchicalMechanism bn(values, 0.0, 100.0, deep_noisy, rng);
  EXPECT_LT(an.noise_variance(q), bn.noise_variance(q));
}

}  // namespace
}  // namespace prc::dp
