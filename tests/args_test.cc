#include "common/args.h"

#include <gtest/gtest.h>

#include <vector>

namespace prc {
namespace {

/// Builds a mutable argv from string literals.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (auto& s : storage) pointers.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers.size()); }
  char** argv() { return pointers.data(); }
  std::vector<std::string> storage;
  std::vector<char*> pointers;
};

ArgParser make_parser() {
  ArgParser parser("prog", "test parser");
  parser.option("alpha", "error bound").option("name", "a string").flag(
      "verbose", "chatty");
  return parser;
}

TEST(ArgParserTest, ParsesOptionsAndFlags) {
  auto parser = make_parser();
  Argv args({"prog", "--alpha", "0.05", "--verbose", "--name", "x y"});
  ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
  EXPECT_DOUBLE_EQ(parser.get_double("alpha", 0.0), 0.05);
  EXPECT_TRUE(parser.has("verbose"));
  EXPECT_EQ(parser.get_or("name", ""), "x y");
  EXPECT_FALSE(parser.has("missing"));
  EXPECT_EQ(parser.get("missing"), std::nullopt);
}

TEST(ArgParserTest, DefaultsWhenAbsent) {
  auto parser = make_parser();
  Argv args({"prog"});
  ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
  EXPECT_DOUBLE_EQ(parser.get_double("alpha", 0.7), 0.7);
  EXPECT_EQ(parser.get_uint("alpha", 9), 9u);
  EXPECT_EQ(parser.get_or("name", "dflt"), "dflt");
}

TEST(ArgParserTest, RejectsUnknownAndMalformed) {
  {
    auto parser = make_parser();
    Argv args({"prog", "--bogus", "1"});
    EXPECT_THROW(parser.parse(args.argc(), args.argv()),
                 std::invalid_argument);
  }
  {
    auto parser = make_parser();
    Argv args({"prog", "--alpha"});  // missing value
    EXPECT_THROW(parser.parse(args.argc(), args.argv()),
                 std::invalid_argument);
  }
  {
    auto parser = make_parser();
    Argv args({"prog", "positional"});
    EXPECT_THROW(parser.parse(args.argc(), args.argv()),
                 std::invalid_argument);
  }
}

TEST(ArgParserTest, RejectsNonNumericValues) {
  auto parser = make_parser();
  Argv args({"prog", "--alpha", "abc"});
  ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
  EXPECT_THROW(parser.get_double("alpha", 0.0), std::invalid_argument);
  EXPECT_THROW(parser.get_uint("alpha", 0), std::invalid_argument);
}

TEST(ArgParserTest, RejectsTrailingGarbage) {
  auto parser = make_parser();
  Argv args({"prog", "--alpha", "1.5x"});
  ASSERT_TRUE(parser.parse(args.argc(), args.argv()));
  EXPECT_THROW(parser.get_double("alpha", 0.0), std::invalid_argument);
}

TEST(ArgParserTest, HelpReturnsFalseAndPrints) {
  auto parser = make_parser();
  Argv args({"prog", "--help"});
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(parser.parse(args.argc(), args.argv()));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("--alpha"), std::string::npos);
  EXPECT_NE(out.find("--verbose"), std::string::npos);
  EXPECT_NE(out.find("test parser"), std::string::npos);
}

}  // namespace
}  // namespace prc
