#include "estimator/rank_counting.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/statistics.h"
#include "estimator/basic_counting.h"
#include "query/range_query.h"
#include "sampling/local_sampler.h"

namespace prc::estimator {
namespace {

using sampling::RankSampleSet;
using sampling::RankedValue;

// --- exact 4-case behaviour on hand-built samples --------------------------

// Node data: 1..10 (ranks equal values).  Sampled: {2, 5, 9}.
RankSampleSet hand_sample() {
  return RankSampleSet({{2.0, 2}, {5.0, 5}, {9.0, 9}});
}

TEST(RankCountingCases, BothNeighborsExist) {
  // Query [3.5, 7.5]: pred = 2 (rank 2), succ = 9 (rank 9).
  // interior = 9 - 2 + 1 = 8; estimate = 8 - 2/p.
  const double p = 0.5;
  const double est = rank_counting_node_estimate(hand_sample(), 10, p,
                                                 {3.5, 7.5});
  EXPECT_DOUBLE_EQ(est, 8.0 - 2.0 / p);
}

TEST(RankCountingCases, OnlyPredecessorExists) {
  // Query [3.5, 9.5]: pred = 2 (rank 2), succ of 9.5 missing.
  // interior = n - rank(pred) + 1 = 10 - 2 + 1 = 9; estimate = 9 - 1/p.
  const double p = 0.25;
  const double est = rank_counting_node_estimate(hand_sample(), 10, p,
                                                 {3.5, 9.5});
  EXPECT_DOUBLE_EQ(est, 9.0 - 1.0 / p);
}

TEST(RankCountingCases, OnlySuccessorExists) {
  // Query [1.5, 3.5]: pred of 1.5 missing, succ = 5 (rank 5).
  // interior = rank(succ) = 5; estimate = 5 - 1/p.
  const double p = 0.2;
  const double est = rank_counting_node_estimate(hand_sample(), 10, p,
                                                 {1.5, 3.5});
  EXPECT_DOUBLE_EQ(est, 5.0 - 1.0 / p);
}

TEST(RankCountingCases, NoNeighborExists) {
  // Query [0.5, 9.5] with samples only inside: pred of 0.5 and succ of 9.5
  // both missing -> estimate = n_i.
  const double est = rank_counting_node_estimate(hand_sample(), 10, 0.3,
                                                 {0.5, 9.5});
  EXPECT_DOUBLE_EQ(est, 10.0);
}

TEST(RankCountingCases, BoundaryEqualityUsesClosedPredecessor) {
  // pred(l) admits equality: query [5.0, 7.5] -> pred = 5 itself.
  const double p = 0.5;
  const double est = rank_counting_node_estimate(hand_sample(), 10, p,
                                                 {5.0, 7.5});
  // interior = 9 - 5 + 1 = 5; estimate = 5 - 2/p.
  EXPECT_DOUBLE_EQ(est, 5.0 - 2.0 / p);
}

TEST(RankCountingCases, EmptyNodeIsZero) {
  const RankSampleSet empty;
  EXPECT_DOUBLE_EQ(rank_counting_node_estimate(empty, 0, 0.5, {0.0, 1.0}),
                   0.0);
}

TEST(RankCountingCases, EmptySampleNonEmptyNodeFallsBackToFullCount) {
  const RankSampleSet empty;
  EXPECT_DOUBLE_EQ(rank_counting_node_estimate(empty, 42, 0.5, {0.0, 1.0}),
                   42.0);
}

TEST(RankCountingCases, RejectsBadArguments) {
  EXPECT_THROW(
      rank_counting_node_estimate(hand_sample(), 10, 0.0, {0.0, 1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      rank_counting_node_estimate(hand_sample(), 10, 1.5, {0.0, 1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      rank_counting_node_estimate(hand_sample(), 10, 0.5, {2.0, 1.0}),
      std::invalid_argument);
}

TEST(RankCountingCases, GlobalEstimateSumsNodes) {
  const RankSampleSet a({{2.0, 2}, {9.0, 9}});
  const RankSampleSet b({{4.0, 4}});
  const std::vector<NodeSampleView> views = {{&a, 10}, {&b, 6}};
  const query::RangeQuery range{3.5, 7.5};
  const double expected =
      rank_counting_node_estimate(a, 10, 0.5, range) +
      rank_counting_node_estimate(b, 6, 0.5, range);
  EXPECT_DOUBLE_EQ(rank_counting_estimate(views, 0.5, range), expected);
}

TEST(RankCountingCases, NullViewThrows) {
  const std::vector<NodeSampleView> views = {{nullptr, 5}};
  EXPECT_THROW(rank_counting_estimate(views, 0.5, {0.0, 1.0}),
               std::invalid_argument);
}

TEST(RankCountingCases, VarianceBounds) {
  EXPECT_DOUBLE_EQ(rank_counting_node_variance_bound(0.5), 32.0);
  EXPECT_DOUBLE_EQ(rank_counting_variance_bound(4, 0.5), 128.0);
  EXPECT_THROW(rank_counting_node_variance_bound(0.0), std::invalid_argument);
}

// --- Monte-Carlo unbiasedness & variance (Theorem 3.1) ---------------------

struct McCase {
  double p;
  double lower;
  double upper;
};

class RankCountingMonteCarlo : public ::testing::TestWithParam<McCase> {};

TEST_P(RankCountingMonteCarlo, UnbiasedWithBoundedVariance) {
  const auto [p, lower, upper] = GetParam();
  // Node data 1..200 (distinct values; ranks == values).
  const std::size_t n = 200;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i + 1);
  const query::RangeQuery range{lower, upper};
  double truth = 0.0;
  for (double v : values) {
    if (range.contains(v)) truth += 1.0;
  }

  Rng rng(static_cast<std::uint64_t>(p * 1e6) + 17);
  RunningStats stats;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    sampling::LocalSampler sampler(values);
    sampler.raise_probability(p, rng);
    stats.add(rank_counting_node_estimate(sampler.current_sample(), n, p,
                                          range));
  }
  // Unbiasedness: |mean - truth| within 5 standard errors.
  const double stderr_bound =
      5.0 * std::sqrt(rank_counting_node_variance_bound(p) / trials);
  EXPECT_NEAR(stats.mean(), truth, stderr_bound)
      << "p=" << p << " range=[" << lower << "," << upper << "]";
  // Theorem 3.1: Var <= 8/p^2 (empirical, with slack for sampling noise).
  EXPECT_LE(stats.variance(),
            rank_counting_node_variance_bound(p) * 1.1)
      << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    SweepsPAndRange, RankCountingMonteCarlo,
    ::testing::Values(
        // interior ranges at several sampling probabilities
        McCase{0.05, 50.5, 150.5}, McCase{0.10, 50.5, 150.5},
        McCase{0.30, 50.5, 150.5}, McCase{0.60, 50.5, 150.5},
        // narrow range
        McCase{0.20, 99.5, 110.5},
        // ranges touching the domain edges
        McCase{0.20, 0.5, 100.5}, McCase{0.20, 100.5, 300.0},
        // full-domain range
        McCase{0.20, 0.0, 300.0}),
    [](const ::testing::TestParamInfo<McCase>& case_info) {
      const auto& c = case_info.param;
      return "p" + std::to_string(static_cast<int>(c.p * 100)) + "_l" +
             std::to_string(static_cast<int>(c.lower)) + "_u" +
             std::to_string(static_cast<int>(c.upper));
    });

TEST(RankCountingMC, GlobalUnbiasedAcrossNodes) {
  // 5 nodes of 100 items each with overlapping domains.
  const std::size_t k = 5;
  std::vector<std::vector<double>> node_values(k);
  for (std::size_t i = 0; i < k; ++i) {
    for (int j = 0; j < 100; ++j) {
      node_values[i].push_back(static_cast<double>(j) +
                               static_cast<double>(i) * 20.0);
    }
  }
  const query::RangeQuery range{30.5, 120.5};
  double truth = 0.0;
  for (const auto& vals : node_values) {
    for (double v : vals) {
      if (range.contains(v)) truth += 1.0;
    }
  }

  const double p = 0.15;
  Rng rng(99);
  RunningStats stats;
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    std::vector<RankSampleSet> sets;
    sets.reserve(k);
    for (const auto& vals : node_values) {
      sampling::LocalSampler sampler(vals);
      sampler.raise_probability(p, rng);
      sets.push_back(sampler.current_sample());
    }
    std::vector<NodeSampleView> views;
    for (const auto& set : sets) views.push_back({&set, 100});
    stats.add(rank_counting_estimate(views, p, range));
  }
  const double var_bound = rank_counting_variance_bound(k, p);
  EXPECT_NEAR(stats.mean(), truth, 5.0 * std::sqrt(var_bound / trials));
  EXPECT_LE(stats.variance(), var_bound * 1.1);
}

TEST(RankCountingMC, ExactWhenEverythingSampled) {
  // p = 1 with query endpoints between data points: the estimator must be
  // exact (every correction term is deterministic).
  std::vector<double> values;
  for (int i = 1; i <= 50; ++i) values.push_back(static_cast<double>(i));
  sampling::LocalSampler sampler(values);
  Rng rng(7);
  sampler.raise_probability(1.0, rng);
  const auto sample = sampler.current_sample();
  for (const auto& [l, u] : std::vector<std::pair<double, double>>{
           {10.5, 20.5}, {0.5, 49.5}, {25.5, 26.5}, {-3.0, 100.0}}) {
    const query::RangeQuery range{l, u};
    double truth = 0.0;
    for (double v : values) {
      if (range.contains(v)) truth += 1.0;
    }
    EXPECT_DOUBLE_EQ(
        rank_counting_node_estimate(sample, values.size(), 1.0, range), truth)
        << "[" << l << ", " << u << "]";
  }
}

// --- comparison against BasicCounting (the paper's §III-A claim) -----------

TEST(BasicCountingTest, NodeEstimateScalesByInverseP) {
  const RankSampleSet set({{2.0, 2}, {5.0, 5}, {9.0, 9}});
  EXPECT_DOUBLE_EQ(basic_counting_node_estimate(set, 0.5, {2.0, 5.0}), 4.0);
  EXPECT_DOUBLE_EQ(basic_counting_node_estimate(set, 0.5, {0.0, 100.0}), 6.0);
  EXPECT_DOUBLE_EQ(basic_counting_node_estimate(set, 0.5, {6.0, 8.0}), 0.0);
  EXPECT_THROW(basic_counting_node_estimate(set, 0.0, {0.0, 1.0}),
               std::invalid_argument);
}

TEST(BasicCountingTest, PooledEstimate) {
  const RankSampleSet a({{1.0, 1}});
  const RankSampleSet b({{2.0, 2}, {3.0, 3}});
  const std::vector<const RankSampleSet*> nodes = {&a, &b};
  EXPECT_DOUBLE_EQ(basic_counting_estimate(nodes, 0.25, {0.0, 10.0}), 12.0);
}

TEST(BasicCountingTest, VarianceFormula) {
  EXPECT_DOUBLE_EQ(basic_counting_variance(100.0, 0.2), 100.0 * 0.8 / 0.2);
  EXPECT_THROW(basic_counting_variance(1.0, 0.0), std::invalid_argument);
}

TEST(BasicCountingTest, UnbiasedMonteCarlo) {
  const std::size_t n = 300;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i + 1);
  const query::RangeQuery range{50.5, 250.5};
  const double truth = 200.0;
  const double p = 0.2;
  Rng rng(31);
  RunningStats stats;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    sampling::LocalSampler sampler(values);
    sampler.raise_probability(p, rng);
    stats.add(basic_counting_node_estimate(sampler.current_sample(), p,
                                           range));
  }
  const double var = basic_counting_variance(truth, p);
  EXPECT_NEAR(stats.mean(), truth, 5.0 * std::sqrt(var / trials));
  EXPECT_NEAR(stats.variance(), var, var * 0.1);
}

TEST(EstimatorComparison, RankCountingWinsOnWideRanges) {
  // The paper's core claim: RankCounting variance (8/p^2) is independent of
  // the true count, while BasicCounting grows as count*(1-p)/p.  For a wide
  // range over big data the rank estimator must empirically dominate.
  const std::size_t n = 5000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i + 1);
  const query::RangeQuery range{100.5, 4900.5};  // truth = 4800
  const double p = 0.1;
  Rng rng(41);
  RunningStats rank_stats, basic_stats;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    sampling::LocalSampler sampler(values);
    sampler.raise_probability(p, rng);
    const auto sample = sampler.current_sample();
    rank_stats.add(rank_counting_node_estimate(sample, n, p, range));
    basic_stats.add(basic_counting_node_estimate(sample, p, range));
  }
  EXPECT_LT(rank_stats.variance() * 10.0, basic_stats.variance());
}

}  // namespace
}  // namespace prc::estimator
