#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "sampling/local_sampler.h"
#include "sampling/rank_sample.h"

namespace prc::sampling {
namespace {

TEST(RankSampleSetTest, SortsByValue) {
  RankSampleSet set({{3.0, 3}, {1.0, 1}, {2.0, 2}});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.samples()[0].value, 1.0);
  EXPECT_EQ(set.samples()[2].value, 3.0);
}

// Rank validation is PRC_DCHECK-gated (debug/sanitizer builds only); a
// release build constructs without checking.
#if PRC_DCHECK_IS_ON()
TEST(RankSampleSetTest, RejectsDuplicateOrZeroRanks) {
  EXPECT_THROW(RankSampleSet({{1.0, 2}, {3.0, 2}}), std::invalid_argument);
  EXPECT_THROW(RankSampleSet({{1.0, 0}}), std::invalid_argument);
}
#endif

TEST(RankSampleSetTest, PredecessorSuccessorBasics) {
  const RankSampleSet set({{10.0, 2}, {20.0, 5}, {30.0, 9}});
  // predecessor: largest value <= x
  EXPECT_EQ(set.predecessor(15.0)->value, 10.0);
  EXPECT_EQ(set.predecessor(10.0)->value, 10.0);  // equality counts
  EXPECT_EQ(set.predecessor(9.99), std::nullopt);
  EXPECT_EQ(set.predecessor(100.0)->value, 30.0);
  // successor: smallest value > x
  EXPECT_EQ(set.successor(15.0)->value, 20.0);
  EXPECT_EQ(set.successor(20.0)->value, 30.0);  // strictly greater
  EXPECT_EQ(set.successor(30.0), std::nullopt);
  EXPECT_EQ(set.successor(-5.0)->value, 10.0);
}

TEST(RankSampleSetTest, TiesPickNearestRank) {
  // Duplicate values: predecessor takes the largest rank among ties, the
  // successor the smallest — the samples nearest the query boundary.
  const RankSampleSet set({{5.0, 3}, {5.0, 4}, {5.0, 7}, {8.0, 9}});
  EXPECT_EQ(set.predecessor(5.0)->rank, 7u);
  EXPECT_EQ(set.successor(5.0)->rank, 9u);
  EXPECT_EQ(set.successor(4.0)->rank, 3u);
}

TEST(RankSampleSetTest, EmptySetHasNoNeighbors) {
  const RankSampleSet set;
  EXPECT_EQ(set.predecessor(1.0), std::nullopt);
  EXPECT_EQ(set.successor(1.0), std::nullopt);
}

TEST(RankSampleSetTest, MergeCombinesAndValidates) {
  RankSampleSet a({{1.0, 1}, {3.0, 3}});
  const RankSampleSet b({{2.0, 2}});
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.samples()[1].value, 2.0);
#if PRC_DCHECK_IS_ON()
  const RankSampleSet conflicting({{9.0, 3}});
  EXPECT_THROW(a.merge(conflicting), std::invalid_argument);
#endif
}

TEST(LocalSamplerTest, RanksFollowSortedOrder) {
  LocalSampler sampler({5.0, 1.0, 3.0, 2.0, 4.0});
  Rng rng(1);
  sampler.raise_probability(1.0, rng);  // take everything
  const auto set = sampler.current_sample();
  ASSERT_EQ(set.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(set.samples()[i].value, static_cast<double>(i + 1));
    EXPECT_EQ(set.samples()[i].rank, i + 1);
  }
}

TEST(LocalSamplerTest, InclusionRateMatchesProbability) {
  std::vector<double> values(20000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  LocalSampler sampler(values);
  Rng rng(2);
  const auto added = sampler.raise_probability(0.3, rng);
  EXPECT_EQ(added.size(), sampler.sample_count());
  EXPECT_NEAR(static_cast<double>(sampler.sample_count()) /
                  static_cast<double>(values.size()),
              0.3, 0.02);
}

TEST(LocalSamplerTest, TopUpPreservesMarginalInclusion) {
  // Raising 0.1 -> 0.4 in two steps must leave every element included with
  // marginal probability 0.4, identical to a single-shot 0.4 draw.
  const std::size_t n = 30000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i);
  LocalSampler sampler(values);
  Rng rng(3);
  sampler.raise_probability(0.1, rng);
  const std::size_t after_first = sampler.sample_count();
  EXPECT_NEAR(static_cast<double>(after_first) / n, 0.1, 0.01);
  const auto added = sampler.raise_probability(0.4, rng);
  EXPECT_EQ(sampler.sample_count(), after_first + added.size());
  EXPECT_NEAR(static_cast<double>(sampler.sample_count()) / n, 0.4, 0.015);
  EXPECT_DOUBLE_EQ(sampler.inclusion_probability(), 0.4);
}

TEST(LocalSamplerTest, TopUpReturnsOnlyNewSamples) {
  std::vector<double> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  LocalSampler sampler(values);
  Rng rng(4);
  const auto first = sampler.raise_probability(0.2, rng);
  const auto second = sampler.raise_probability(0.5, rng);
  for (const auto& s : second) {
    for (const auto& f : first) EXPECT_NE(s.rank, f.rank);
  }
}

TEST(LocalSamplerTest, LoweringProbabilityIsNoOp) {
  LocalSampler sampler({1.0, 2.0, 3.0});
  Rng rng(5);
  sampler.raise_probability(0.9, rng);
  const auto count = sampler.sample_count();
  EXPECT_TRUE(sampler.raise_probability(0.5, rng).empty());
  EXPECT_EQ(sampler.sample_count(), count);
  EXPECT_DOUBLE_EQ(sampler.inclusion_probability(), 0.9);
}

TEST(LocalSamplerTest, RejectsOutOfRangeProbability) {
  LocalSampler sampler({1.0});
  Rng rng(6);
  EXPECT_THROW(sampler.raise_probability(-0.1, rng), std::invalid_argument);
  EXPECT_THROW(sampler.raise_probability(1.1, rng), std::invalid_argument);
}

TEST(LocalSamplerTest, FirstLastValues) {
  LocalSampler sampler({7.0, 2.0, 9.0});
  EXPECT_EQ(sampler.first_value(), 2.0);
  EXPECT_EQ(sampler.last_value(), 9.0);
  LocalSampler empty({});
  EXPECT_THROW(empty.first_value(), std::logic_error);
}

TEST(LocalSamplerTest, ProbabilityOneTakesEverything) {
  std::vector<double> values(500, 1.0);
  LocalSampler sampler(values);
  Rng rng(7);
  sampler.raise_probability(1.0, rng);
  EXPECT_EQ(sampler.sample_count(), 500u);
  // Further raises are no-ops.
  EXPECT_TRUE(sampler.raise_probability(1.0, rng).empty());
}

}  // namespace
}  // namespace prc::sampling
