// Randomized property tests for the low-level containers: CSV round-trip
// over adversarial content, RankSampleSet neighbor invariants, message
// wire-size identities, and histogram-sketch consistency against the exact
// oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/rng.h"
#include "estimator/histogram_sketch.h"
#include "iot/messages.h"
#include "query/range_query.h"
#include "sampling/rank_sample.h"

namespace prc {
namespace {

class PropertyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

std::string random_field(Rng& rng) {
  static const std::string alphabet =
      "abcXYZ019 ,\"\n\r;|\t'\\/.-=+!@#";
  const auto len = static_cast<std::size_t>(rng.uniform_int(0, 12));
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(alphabet.size()) - 1))]);
  }
  return out;
}

TEST_P(PropertyFuzz, CsvRoundTripsArbitraryContent) {
  Rng rng(GetParam());
  const auto cols = static_cast<std::size_t>(rng.uniform_int(1, 6));
  std::vector<std::string> header;
  for (std::size_t c = 0; c < cols; ++c) {
    header.push_back("col" + std::to_string(c));
  }
  CsvTable table(header);
  const auto rows = static_cast<std::size_t>(rng.uniform_int(0, 30));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < cols; ++c) row.push_back(random_field(rng));
    table.add_row(row);
  }
  const auto reparsed = parse_csv(to_csv(table));
  ASSERT_EQ(reparsed.header(), table.header());
  ASSERT_EQ(reparsed.row_count(), table.row_count());
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(reparsed.row(r), table.row(r)) << "row " << r;
  }
}

TEST_P(PropertyFuzz, RankSampleNeighborInvariants) {
  Rng rng(GetParam() + 1000);
  // Random sample set over a random node population.
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 300));
  std::vector<double> values(n);
  for (auto& v : values) {
    v = std::round(rng.uniform(0.0, 50.0));  // coarse -> many duplicates
  }
  std::sort(values.begin(), values.end());
  std::vector<sampling::RankedValue> sampled;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) {
      sampled.push_back({values[i], static_cast<std::uint64_t>(i + 1)});
    }
  }
  const sampling::RankSampleSet set(sampled);
  for (int probe = 0; probe < 50; ++probe) {
    const double x = rng.uniform(-5.0, 55.0);
    const auto pred = set.predecessor(x);
    const auto succ = set.successor(x);
    if (pred) {
      EXPECT_LE(pred->value, x);
      // Predecessor is the largest sampled value <= x.
      for (const auto& s : set.samples()) {
        if (s.value <= x) {
          EXPECT_LE(s.value, pred->value);
        }
      }
    } else {
      for (const auto& s : set.samples()) EXPECT_GT(s.value, x);
    }
    if (succ) {
      EXPECT_GT(succ->value, x);
      for (const auto& s : set.samples()) {
        if (s.value > x) {
          EXPECT_GE(s.value, succ->value);
        }
      }
    } else {
      for (const auto& s : set.samples()) EXPECT_LE(s.value, x);
    }
    // Pred and succ bracket x and never cross.
    if (pred && succ) {
      EXPECT_LT(pred->value, succ->value + 1e-12);
    }
  }
}

TEST_P(PropertyFuzz, WireSizeIdentity) {
  Rng rng(GetParam() + 2000);
  iot::SampleReport report;
  report.node_id = static_cast<int>(rng.uniform_int(0, 100));
  report.data_count = static_cast<std::size_t>(rng.uniform_int(0, 100000));
  const auto samples = static_cast<std::size_t>(rng.uniform_int(0, 200));
  for (std::size_t i = 0; i < samples; ++i) {
    report.new_samples.push_back(
        {rng.uniform(-1e6, 1e6), static_cast<std::uint64_t>(i + 1)});
  }
  EXPECT_EQ(report.wire_size(), iot::kMessageHeaderBytes + 8 + 16 * samples);
  const iot::SampleRequest request{report.node_id, rng.uniform()};
  EXPECT_EQ(request.wire_size(), iot::kMessageHeaderBytes + 8);
  EXPECT_EQ(iot::Heartbeat{1}.wire_size(), iot::kMessageHeaderBytes);
}

TEST_P(PropertyFuzz, SketchEstimateWithinErrorBoundOfTruth) {
  Rng rng(GetParam() + 3000);
  const auto n = static_cast<std::size_t>(rng.uniform_int(10, 2000));
  std::vector<double> values(n);
  for (auto& v : values) v = rng.uniform(0.0, 100.0);
  const estimator::HistogramSketch sketch(values, 0.0, 100.0 + 1e-9, 16);
  for (int probe = 0; probe < 20; ++probe) {
    double a = rng.uniform(0.0, 100.0);
    double b = rng.uniform(0.0, 100.0);
    if (a > b) std::swap(a, b);
    const query::RangeQuery q{a, b};
    const double truth =
        static_cast<double>(query::exact_range_count(values, q));
    EXPECT_LE(std::abs(sketch.estimate(q) - truth),
              sketch.error_bound(q) + 1e-6)
        << q.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace prc
