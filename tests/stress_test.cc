// Big-IoT-scale stress: the title's "Big IoT Data" claim exercised at a
// scale two orders beyond the evaluation dataset — 512 nodes, 500k values —
// verifying correctness (contract, exactness invariants) and that the
// communication advantage grows with scale (the sample count is
// size-independent).  Kept to a few seconds of wall clock.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dp/private_counting.h"
#include "estimator/accuracy.h"
#include "iot/network.h"
#include "query/range_query.h"

namespace prc {
namespace {

std::vector<std::vector<double>> big_node_data(std::size_t nodes,
                                               std::size_t per_node,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> data(nodes);
  for (auto& node : data) {
    node.reserve(per_node);
    for (std::size_t j = 0; j < per_node; ++j) {
      node.push_back(rng.uniform(0.0, 1000.0));
    }
  }
  return data;
}

TEST(StressTest, HalfMillionValuesAcross512Nodes) {
  const std::size_t k = 512;
  const std::size_t per_node = 1000;
  const std::size_t n = k * per_node;
  iot::FlatNetwork network(big_node_data(k, per_node, 42));
  ASSERT_EQ(network.total_data_count(), n);

  const query::AccuracySpec spec{0.01, 0.9};
  const double p = std::min(
      1.0, estimator::required_sampling_probability(spec, k, n));
  // Theorem 3.3: ~2 sqrt(8k)/(alpha sqrt(1-delta)) samples regardless of n;
  // at k=512, alpha=0.01 that is ~40k samples = 8% of half a million.
  network.ensure_sampling_probability(p);
  EXPECT_LT(network.base_station().cached_sample_count(), n / 5);

  // Full-domain exactness survives the scale.
  EXPECT_DOUBLE_EQ(network.rank_counting_estimate({-1.0, 1001.0}),
                   static_cast<double>(n));

  // Uniform data: truth of [200, 600] is ~40% of n; Chebyshev at 99.9%.
  const query::RangeQuery range{200.0, 600.0};
  const double truth = 0.4 * static_cast<double>(n);
  const double bound =
      estimator::error_bound_at_confidence(p, k, 0.999) +
      0.001 * static_cast<double>(n);  // uniform-data truth slack
  EXPECT_NEAR(network.rank_counting_estimate(range), truth, bound);

  // Communication: far below shipping raw data.
  EXPECT_LT(network.stats().uplink_bytes, n * sizeof(double) / 2);
}

TEST(StressTest, PrivatePipelineAtScale) {
  const std::size_t k = 128;
  const std::size_t per_node = 2000;
  iot::FlatNetwork network(big_node_data(k, per_node, 7));
  dp::PrivateRangeCounter counter(network, {}, 11);
  const query::AccuracySpec spec{0.02, 0.8};
  const auto answer = counter.answer({100.0, 900.0}, spec);
  const double n = static_cast<double>(k * per_node);
  // One draw: check it against the generous 3x contract envelope (the
  // contract itself holds with prob 0.8; 3x alpha*n is far into the tail).
  EXPECT_NEAR(answer.value, 0.8 * n, 3.0 * spec.alpha * n);
  EXPECT_GT(answer.plan.epsilon_amplified, 0.0);
  // Cross-unit on purpose: the Lemma 3.4 amplification check.
  EXPECT_LT(answer.plan.epsilon_amplified.value(), answer.plan.epsilon.value());
}

TEST(StressTest, ManySmallNodes) {
  // 2000 nodes of 5 values each: the k >> n_i regime where per-node
  // corrections dominate; unbiasedness must still hold in aggregate.
  const std::size_t k = 2000;
  iot::FlatNetwork network(big_node_data(k, 5, 3));
  network.ensure_sampling_probability(0.5);
  EXPECT_DOUBLE_EQ(network.rank_counting_estimate({-1.0, 1001.0}),
                   static_cast<double>(k * 5));
  const double estimate = network.rank_counting_estimate({0.0, 500.0});
  const double truth = 0.5 * static_cast<double>(k * 5);
  // sd <= sqrt(8k)/p = sqrt(16000)/0.5 ~ 253.
  EXPECT_NEAR(estimate, truth, 6.0 * std::sqrt(8.0 * k) / 0.5);
}

}  // namespace
}  // namespace prc
