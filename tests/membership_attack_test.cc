#include "dp/membership_attack.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/amplification.h"

namespace prc::dp {
namespace {

TEST(AdvantageBoundTest, ClosedForm) {
  EXPECT_DOUBLE_EQ(dp_advantage_bound(0.0), 0.0);
  EXPECT_NEAR(dp_advantage_bound(1.0),
              (std::exp(1.0) - 1.0) / (std::exp(1.0) + 1.0), 1e-12);
  EXPECT_LT(dp_advantage_bound(0.5), dp_advantage_bound(2.0));
  EXPECT_LT(dp_advantage_bound(20.0), 1.0);
  EXPECT_THROW(dp_advantage_bound(-1.0), std::invalid_argument);
}

TEST(MembershipAttackTest, Validation) {
  Rng rng(1);
  EXPECT_THROW(run_membership_attack(10, 0.0, 1.0, 100, rng),
               std::invalid_argument);
  EXPECT_THROW(run_membership_attack(10, 0.5, 0.0, 100, rng),
               std::invalid_argument);
  EXPECT_THROW(run_membership_attack(10, 0.5, 1.0, 0, rng),
               std::invalid_argument);
}

TEST(MembershipAttackTest, AdvantageRespectsAmplifiedBound) {
  // The attacker faces the sampled mechanism, so its advantage is bounded
  // by the AMPLIFIED budget eps' = ln(1 - p + p e^eps), which is far below
  // the Laplace budget eps at small p.
  Rng rng(7);
  const double epsilon = 2.0;
  const double p = 0.1;
  const auto result = run_membership_attack(30, p, epsilon, 60000, rng);
  const double eps_amplified = amplified_epsilon(epsilon, p);
  const double mc_slack = 3.0 / std::sqrt(60000.0 / 4.0);
  EXPECT_LE(result.advantage(),
            dp_advantage_bound(eps_amplified) + mc_slack);
  // And sanity: the advantage is far below the UNAMPLIFIED ceiling —
  // sampling is doing real privacy work.
  EXPECT_LT(result.advantage(), dp_advantage_bound(epsilon) * 0.6);
}

TEST(MembershipAttackTest, NoSamplingIsEasierToAttack) {
  // At p = 1 the only protection is the Laplace noise; the optimal attacker
  // should do measurably better than against the sampled release.
  Rng rng(9);
  const double epsilon = 2.0;
  const auto sampled = run_membership_attack(30, 0.1, epsilon, 40000, rng);
  const auto unsampled = run_membership_attack(30, 1.0, epsilon, 40000, rng);
  EXPECT_GT(unsampled.advantage(), sampled.advantage() + 0.05);
  // Still bounded by the Laplace budget.
  const double mc_slack = 3.0 / std::sqrt(40000.0 / 4.0);
  EXPECT_LE(unsampled.advantage(), dp_advantage_bound(epsilon) + mc_slack);
}

TEST(MembershipAttackTest, WeakNoiseStrongAttack) {
  // With a huge budget and no sampling the attack approaches certainty —
  // proving the harness has power (it is not trivially reporting 0).
  Rng rng(11);
  const auto result = run_membership_attack(30, 1.0, 50.0, 5000, rng);
  EXPECT_GT(result.advantage(), 0.8);
}

TEST(MembershipAttackTest, RatesAreProbabilities) {
  Rng rng(13);
  const auto result = run_membership_attack(20, 0.3, 1.0, 5000, rng);
  EXPECT_GE(result.true_positive_rate, 0.0);
  EXPECT_LE(result.true_positive_rate, 1.0);
  EXPECT_GE(result.false_positive_rate, 0.0);
  EXPECT_LE(result.false_positive_rate, 1.0);
  EXPECT_EQ(result.trials, 5000u);
}

}  // namespace
}  // namespace prc::dp
