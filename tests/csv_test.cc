#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace prc {
namespace {

TEST(CsvTest, ParsesSimpleDocument) {
  const auto table = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(table.header(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.field(0, 1), "2");
  EXPECT_EQ(table.field(1, 2), "6");
}

TEST(CsvTest, HandlesCrlfAndMissingTrailingNewline) {
  const auto table = parse_csv("x,y\r\n10,20\r\n30,40");
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.field(1, 1), "40");
}

TEST(CsvTest, QuotedFieldsWithCommasAndEscapes) {
  const auto table = parse_csv("name,note\nalice,\"a,b\"\nbob,\"say \"\"hi\"\"\"\n");
  EXPECT_EQ(table.field(0, 1), "a,b");
  EXPECT_EQ(table.field(1, 1), "say \"hi\"");
}

TEST(CsvTest, QuotedNewlineInsideField) {
  const auto table = parse_csv("k,v\n1,\"line1\nline2\"\n");
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.field(0, 1), "line1\nline2");
}

TEST(CsvTest, EmptyFieldsPreserved) {
  const auto table = parse_csv("a,b,c\n,,\nx,,z\n");
  EXPECT_EQ(table.field(0, 0), "");
  EXPECT_EQ(table.field(0, 2), "");
  EXPECT_EQ(table.field(1, 1), "");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), std::invalid_argument);
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::invalid_argument);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv("a\n\"oops\n"), std::invalid_argument);
}

TEST(CsvTest, RejectsEmptyDocument) {
  EXPECT_THROW(parse_csv(""), std::invalid_argument);
}

TEST(CsvTest, ColumnLookup) {
  const auto table = parse_csv("alpha,beta\n1,2\n");
  EXPECT_EQ(table.column_index("beta"), std::optional<std::size_t>(1));
  EXPECT_EQ(table.column_index("gamma"), std::nullopt);
}

TEST(CsvTest, FieldAsDoubleParsesAndRejects) {
  const auto table = parse_csv("v\n3.25\nnot-a-number\n");
  EXPECT_DOUBLE_EQ(table.field_as_double(0, 0), 3.25);
  EXPECT_THROW(table.field_as_double(1, 0), std::invalid_argument);
}

TEST(CsvTest, ColumnAsDoubles) {
  const auto table = parse_csv("a,b\n1,10\n2,20\n3,30\n");
  EXPECT_EQ(table.column_as_doubles("b"),
            (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_THROW(table.column_as_doubles("nope"), std::invalid_argument);
}

TEST(CsvTest, SerializationQuotesOnlyWhenNeeded) {
  CsvTable table({"plain", "tricky"});
  table.add_row({"hello", "a,b"});
  table.add_row({"world", "q\"q"});
  const std::string text = to_csv(table);
  EXPECT_EQ(text, "plain,tricky\nhello,\"a,b\"\nworld,\"q\"\"q\"\n");
}

TEST(CsvTest, RoundTripPreservesContent) {
  CsvTable table({"a", "b"});
  table.add_row({"1", "two,with comma"});
  table.add_row({"", "with \"quotes\" and\nnewline"});
  const auto reparsed = parse_csv(to_csv(table));
  ASSERT_EQ(reparsed.row_count(), 2u);
  EXPECT_EQ(reparsed.field(0, 1), "two,with comma");
  EXPECT_EQ(reparsed.field(1, 1), "with \"quotes\" and\nnewline");
}

TEST(CsvTest, SingleEmptyFieldRowSurvivesRoundTrip) {
  // Regression (found by the property fuzzer): a one-column row holding an
  // empty string used to serialize to a bare newline, which parsers skip.
  CsvTable table({"only"});
  table.add_row({""});
  table.add_row({"x"});
  table.add_row({""});
  EXPECT_EQ(to_csv(table), "only\n\"\"\nx\n\"\"\n");
  const auto reparsed = parse_csv(to_csv(table));
  ASSERT_EQ(reparsed.row_count(), 3u);
  EXPECT_EQ(reparsed.field(0, 0), "");
  EXPECT_EQ(reparsed.field(1, 0), "x");
  EXPECT_EQ(reparsed.field(2, 0), "");
}

TEST(CsvTest, AddRowRejectsWidthMismatch) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/prc_csv_test.csv";
  CsvTable table({"x", "y"});
  table.add_row({"1.5", "2.5"});
  write_csv_file(table, path);
  const auto loaded = read_csv_file(path);
  EXPECT_EQ(loaded.row_count(), 1u);
  EXPECT_DOUBLE_EQ(loaded.field_as_double(0, 1), 2.5);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/prc.csv"), std::runtime_error);
}

}  // namespace
}  // namespace prc
