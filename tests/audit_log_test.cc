// Privacy-budget audit timeline: JSONL export shape, live reconciliation
// (Sigma mint epsilon' == ledger released epsilon'), refusal accounting,
// under-count detection for an unrecovered crash, and a chaos sweep proving
// the recovered timeline reconciles at EVERY registered sell-path crash
// point.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/crash_point.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "data/partition.h"
#include "iot/network.h"
#include "market/audit_log.h"
#include "market/broker.h"
#include "market/wal.h"

namespace prc::market {
namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kTotal = 4000;
const query::RangeQuery kRange{100.5, 3000.5};
const query::AccuracySpec kSpec{0.1, 0.6};

std::vector<std::vector<double>> node_data() {
  std::vector<double> values(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) values[i] = static_cast<double>(i);
  Rng rng(3);
  return data::partition_values(values, kNodes,
                                data::PartitionStrategy::kRoundRobin, rng);
}

pricing::VarianceModel variance_model() {
  return pricing::VarianceModel(kTotal, kNodes);
}

std::unique_ptr<pricing::PricingFunction> safe_pricing() {
  return std::make_unique<pricing::InverseVariancePricing>(
      variance_model(), query::AccuracySpec{0.1, 0.5}, 100.0, 1.0);
}

std::string wal_path_for(const std::string& point) {
  std::string name = point;
  std::replace(name.begin(), name.end(), '.', '_');
  return ::testing::TempDir() + "prc_audit_" + name + ".wal";
}

struct BrokerRig {
  explicit BrokerRig(BrokerConfig config = {})
      : network(node_data()),
        counter(network),
        broker(counter, safe_pricing(), config) {}

  iot::FlatNetwork network;
  dp::PrivateRangeCounter counter;
  DataBroker broker;
};

BrokerConfig chaos_config() {
  BrokerConfig config;
  config.wal_checkpoint_interval = 1;  // checkpoints on the swept path
  return config;
}

std::size_t count_events(const std::vector<AuditEvent>& events,
                         AuditEventType type) {
  std::size_t count = 0;
  for (const auto& event : events) {
    if (event.type == type) ++count;
  }
  return count;
}

TEST(AuditLogTest, JsonlShapeAndDenseIndices) {
  BrokerRig rig;
  rig.broker.quote(kSpec);
  rig.broker.sell("alice", kRange, kSpec);

  const auto events = rig.broker.audit_log().events_snapshot();
  ASSERT_GE(events.size(), 4u);  // quote, reserve, mint, commit at least
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].index, i);  // dense, append-ordered
  }
  EXPECT_EQ(count_events(events, AuditEventType::kQuote), 1u);
  EXPECT_EQ(count_events(events, AuditEventType::kReserve), 1u);
  EXPECT_EQ(count_events(events, AuditEventType::kMint), 1u);
  EXPECT_EQ(count_events(events, AuditEventType::kCommit), 1u);

  const std::string jsonl = rig.broker.audit_log().to_jsonl();
  std::size_t lines = 0;
  std::size_t typed = 0;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    const auto end = jsonl.find('\n', pos);
    ASSERT_NE(end, std::string::npos) << "unterminated JSONL line";
    const std::string line = jsonl.substr(pos, end - pos);
    EXPECT_EQ(line.rfind("{\"index\": ", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    if (line.find("\"type\": \"") != std::string::npos) ++typed;
    ++lines;
    pos = end + 1;
  }
  EXPECT_EQ(lines, events.size());
  EXPECT_EQ(typed, events.size());
}

TEST(AuditLogTest, LiveBrokerReconcilesExactly) {
  BrokerRig rig;
  rig.broker.sell("alice", kRange, kSpec);
  rig.broker.sell("bob", kRange, kSpec);
  rig.broker.sell("alice", kRange, kSpec);

  const auto result = rig.broker.audit_log().reconcile(rig.broker.ledger());
  EXPECT_TRUE(result.consistent) << result.to_string();
  EXPECT_GT(result.minted_epsilon, 0.0);
  EXPECT_NEAR(result.recovered_epsilon, 0.0, 0.0);
  EXPECT_NEAR(result.minted_epsilon, result.ledger_epsilon,
              1e-9 * (1.0 + result.ledger_epsilon));
  EXPECT_NE(result.to_string().find("CONSISTENT"), std::string::npos);
}

TEST(AuditLogTest, RefusalRecordsAttemptedEpsilonWithoutSpendingIt) {
  BrokerConfig config;
  config.per_consumer_epsilon_cap = 0.02;
  BrokerRig rig(config);
  rig.broker.sell("warmup", kRange, kSpec);  // warms the plan cache

  bool refused = false;
  try {
    for (int i = 0; i < 64; ++i) rig.broker.sell("alice", kRange, kSpec);
  } catch (const BudgetExceededError&) {
    refused = true;
  }
  ASSERT_TRUE(refused) << "the 0.02 cap never bit in 64 sales";

  const auto events = rig.broker.audit_log().events_snapshot();
  const auto refusal =
      std::find_if(events.begin(), events.end(), [](const AuditEvent& e) {
        return e.type == AuditEventType::kRefusal;
      });
  ASSERT_NE(refusal, events.end());
  EXPECT_EQ(refusal->consumer_id, "alice");
  EXPECT_GT(refusal->epsilon.value(), 0.0);  // attempted, recorded
  EXPECT_FALSE(refusal->detail.empty());

  // Refusals spend nothing: the books still balance without them.
  const auto result = rig.broker.audit_log().reconcile(rig.broker.ledger());
  EXPECT_TRUE(result.consistent) << result.to_string();
}

TEST(AuditLogTest, UnrecoveredCrashAfterMintFailsReconciliation) {
  // No WAL: the mechanism dies after the mint barrier admitted the plan
  // (epsilon committed-to) but before the ledger recorded it.  The audit
  // timeline must EXPOSE that hole, not paper over it.
  auto& registry = crashpoints::Registry::instance();
  registry.disarm_all();
  BrokerRig rig;
  rig.broker.sell("alice", kRange, kSpec);
  registry.arm("dp.post_mint");
  EXPECT_THROW(rig.broker.sell("bob", kRange, kSpec),
               crashpoints::SimulatedCrash);
  registry.disarm_all();

  const auto result = rig.broker.audit_log().reconcile(rig.broker.ledger());
  EXPECT_FALSE(result.consistent) << result.to_string();
  EXPECT_GT(result.minted_epsilon, result.ledger_epsilon);
  EXPECT_NE(result.to_string().find("VIOLATED"), std::string::npos);
}

TEST(AuditLogTest, RecoveryEventsRebuildTimelineFromWal) {
  auto& registry = crashpoints::Registry::instance();
  registry.disarm_all();
  const auto path = wal_path_for("rebuild");
  std::remove(path.c_str());
  {
    BrokerRig rig;
    rig.broker.attach_wal(path);
    rig.broker.sell("alice", kRange, kSpec);
    registry.arm("dp.post_mint");
    EXPECT_THROW(rig.broker.sell("bob", kRange, kSpec),
                 crashpoints::SimulatedCrash);
    registry.disarm_all();
  }
  const auto recovery = wal::read_wal(path);
  AuditLog rebuilt;
  append_recovery_events(rebuilt, recovery);
  const auto events = rebuilt.events_snapshot();
  // Base checkpoint, alice's replayed commit, bob's orphaned intent, and
  // the closing recovery event.
  EXPECT_EQ(count_events(events, AuditEventType::kCheckpoint), 1u);
  EXPECT_EQ(count_events(events, AuditEventType::kCommit), 1u);
  EXPECT_EQ(count_events(events, AuditEventType::kIntent), 1u);
  EXPECT_EQ(count_events(events, AuditEventType::kRecovery), 1u);
  const auto recovered =
      std::find_if(events.begin(), events.end(), [](const AuditEvent& e) {
        return e.type == AuditEventType::kRecovery;
      });
  ASSERT_NE(recovered, events.end());
  EXPECT_GT(recovered->epsilon.value(), 0.0);
  std::remove(path.c_str());
}

TEST(AuditLogTest, ChaosSweepReconcilesAtEveryCrashPoint) {
  auto& registry = crashpoints::Registry::instance();
  registry.disarm_all();

  // Discovery pass (same as the chaos harness): one clean WAL-enabled sale
  // plus one recovery registers every sell-path crash point.
  {
    const auto path = wal_path_for("discovery");
    std::remove(path.c_str());
    BrokerRig rig(chaos_config());
    rig.broker.attach_wal(path);
    rig.broker.sell("alice", kRange, kSpec);
    BrokerRig fresh;
    fresh.broker.recover_and_attach_wal(path, variance_model());
    std::remove(path.c_str());
  }

  for (const auto& point : registry.names()) {
    if (point == "wal.pre_compact_rename") continue;  // recovery-side
    SCOPED_TRACE("crash point " + point);
    registry.disarm_all();
    const auto path = wal_path_for(point);
    std::remove(path.c_str());
    {
      BrokerRig rig(chaos_config());
      rig.broker.attach_wal(path);
      rig.broker.sell("alice", kRange, kSpec);
      registry.arm(point);
      try {
        rig.broker.sell("bob", kRange, kSpec);
      } catch (const crashpoints::SimulatedCrash&) {
      }
      registry.disarm_all();
      // The rig dies here; its in-memory audit log dies with it.
    }

    BrokerRig fresh;
    fresh.broker.recover_and_attach_wal(path, variance_model());
    // The rebuilt timeline must balance against the recovered ledger:
    // recovered epsilon' (checkpoint + replayed commits + orphans) is the
    // whole story so far.
    const auto after_recovery =
        fresh.broker.audit_log().reconcile(fresh.broker.ledger());
    EXPECT_TRUE(after_recovery.consistent) << after_recovery.to_string();
    EXPECT_GT(after_recovery.recovered_epsilon, 0.0);

    // And it keeps balancing as the recovered broker trades on: new mints
    // stack on top of the recovered base.
    fresh.broker.sell("carol", kRange, kSpec);
    const auto after_sale =
        fresh.broker.audit_log().reconcile(fresh.broker.ledger());
    EXPECT_TRUE(after_sale.consistent) << after_sale.to_string();
    EXPECT_GT(after_sale.minted_epsilon, 0.0);
    EXPECT_GT(after_sale.ledger_epsilon, after_recovery.recovered_epsilon);
    std::remove(path.c_str());
  }
}

TEST(AuditLogTest, WalAttachmentAndCheckpointsAppearInTimeline) {
  auto& registry = crashpoints::Registry::instance();
  registry.disarm_all();
  const auto path = wal_path_for("timeline");
  std::remove(path.c_str());
  BrokerRig rig(chaos_config());
  rig.broker.attach_wal(path);
  rig.broker.sell("alice", kRange, kSpec);
  const auto events = rig.broker.audit_log().events_snapshot();
  // Seed checkpoint at attach + periodic checkpoint after the commit.
  EXPECT_GE(count_events(events, AuditEventType::kCheckpoint), 2u);
  // The durable intent precedes the mint in append order.
  const auto intent_at =
      std::find_if(events.begin(), events.end(), [](const AuditEvent& e) {
        return e.type == AuditEventType::kIntent;
      });
  const auto mint_at =
      std::find_if(events.begin(), events.end(), [](const AuditEvent& e) {
        return e.type == AuditEventType::kMint;
      });
  ASSERT_NE(intent_at, events.end());
  ASSERT_NE(mint_at, events.end());
  EXPECT_LT(intent_at->index, mint_at->index);
  EXPECT_GT(intent_at->wal_sequence, 0u);
  EXPECT_EQ(intent_at->wal_sequence, mint_at->wal_sequence);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prc::market
