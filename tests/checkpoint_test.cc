// Base-station checkpointing: serialize/restore the sample cache so a
// broker can restart without a collection round.
#include <gtest/gtest.h>

#include "iot/base_station.h"
#include "iot/codec.h"
#include "iot/network.h"
#include "query/range_query.h"

namespace prc::iot {
namespace {

std::vector<std::vector<double>> grid_node_data(std::size_t nodes,
                                                std::size_t per_node) {
  std::vector<std::vector<double>> data(nodes);
  double v = 0.0;
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = 0; j < per_node; ++j) data[i].push_back(v += 1.0);
  }
  return data;
}

TEST(CheckpointTest, RoundTripPreservesEverything) {
  FlatNetwork network(grid_node_data(6, 400));
  network.ensure_sampling_probability(0.35);
  const auto& original = network.base_station();

  const auto bytes = original.serialize();
  const BaseStation restored = BaseStation::deserialize(bytes);

  EXPECT_EQ(restored.node_count(), original.node_count());
  EXPECT_EQ(restored.total_data_count(), original.total_data_count());
  EXPECT_EQ(restored.cached_sample_count(), original.cached_sample_count());
  EXPECT_DOUBLE_EQ(restored.sampling_probability(),
                   original.sampling_probability());
  // Every estimate coincides exactly.
  for (const auto& range : std::vector<query::RangeQuery>{
           {100.5, 900.5}, {0.0, 5000.0}, {1200.5, 1300.5}}) {
    EXPECT_DOUBLE_EQ(restored.rank_counting_estimate(range),
                     original.rank_counting_estimate(range));
    EXPECT_DOUBLE_EQ(restored.basic_counting_estimate(range),
                     original.basic_counting_estimate(range));
  }
}

TEST(CheckpointTest, FreshStationRoundTrips) {
  const BaseStation fresh(3);
  const auto restored = BaseStation::deserialize(fresh.serialize());
  EXPECT_EQ(restored.node_count(), 3u);
  EXPECT_EQ(restored.total_data_count(), 0u);
  EXPECT_DOUBLE_EQ(restored.sampling_probability(), 0.0);
}

TEST(CheckpointTest, RejectsGarbage) {
  EXPECT_THROW(BaseStation::deserialize({}), std::invalid_argument);
  EXPECT_THROW(BaseStation::deserialize({'X', 'Y', 'Z', 'W', 0, 0}),
               std::invalid_argument);
  // Valid prefix, truncated body.
  FlatNetwork network(grid_node_data(2, 50));
  network.ensure_sampling_probability(0.5);
  auto bytes = network.base_station().serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_ANY_THROW(BaseStation::deserialize(bytes));
}

TEST(CheckpointTest, RejectsVersionMismatch) {
  const BaseStation station(1);
  auto bytes = station.serialize();
  bytes[4] = 99;  // bump the version field
  EXPECT_THROW(BaseStation::deserialize(bytes), std::invalid_argument);
}

TEST(CheckpointTest, CorruptedFrameIsDetected) {
  FlatNetwork network(grid_node_data(2, 200));
  network.ensure_sampling_probability(0.5);
  auto bytes = network.base_station().serialize();
  bytes.back() ^= 0x40;  // flip a bit inside the last node's frame
  EXPECT_THROW(BaseStation::deserialize(bytes), CodecError);
}

TEST(CheckpointTest, RestoredStationAcceptsFurtherRounds) {
  FlatNetwork network(grid_node_data(2, 100));
  network.ensure_sampling_probability(0.2);
  BaseStation restored =
      BaseStation::deserialize(network.base_station().serialize());
  // The restored cache continues to accept protocol traffic: probability
  // stays monotone and replacement resyncs work.
  EXPECT_THROW(restored.commit_round(0.1), std::invalid_argument);
  restored.commit_round(0.5);
  EXPECT_DOUBLE_EQ(restored.sampling_probability(), 0.5);
  SampleReport resync;
  resync.node_id = 0;
  resync.data_count = 120;
  resync.new_samples = {{5.0, 5}, {80.0, 80}};
  restored.replace(resync);
  EXPECT_EQ(restored.total_data_count(), 120u + 100u);
}

}  // namespace
}  // namespace prc::iot
