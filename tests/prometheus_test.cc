// Prometheus exposition layer: golden render output, metadata-driven HELP
// text, round-trip through the promtool-style parser, histogram
// cumulativity, and rejection of malformed expositions.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>

#include "common/metrics_metadata.h"
#include "common/prometheus.h"
#include "common/telemetry.h"

namespace prc::telemetry {
namespace {

TelemetrySnapshot golden_snapshot() {
  TelemetrySnapshot snapshot;
  snapshot.counters.emplace_back("market.sales", 3);
  snapshot.gauges.emplace_back("dp.epsilon_spent_total", 1.5);
  HistogramSnapshot hist;
  hist.name = "pricing.price";
  hist.count = 6;
  hist.sum = 7.5;
  hist.min = 0.5;
  hist.max = 3.0;
  hist.p50 = 1.5;
  hist.p95 = 3.0;
  hist.p99 = 3.0;
  hist.bounds = {1.0, 2.0};
  hist.bucket_counts = {1, 2, 3};  // non-cumulative + overflow slot
  snapshot.histograms.push_back(hist);
  return snapshot;
}

TEST(PrometheusRenderTest, GoldenExposition) {
  const std::string rendered = prometheus::render(golden_snapshot());
  const std::string kGolden =
      "# HELP prc_market_sales_total Sales completed (answer minted, ledger "
      "committed).\n"
      "# TYPE prc_market_sales_total counter\n"
      "# UNIT prc_market_sales_total sales\n"
      "prc_market_sales_total 3\n"
      "# HELP prc_dp_epsilon_spent_total Cumulative amplified epsilon' "
      "released by the DP layer since process start (ground truth for audit "
      "reconciliation).\n"
      "# TYPE prc_dp_epsilon_spent_total gauge\n"
      "# UNIT prc_dp_epsilon_spent_total epsilon\n"
      "prc_dp_epsilon_spent_total 1.5\n"
      "# HELP prc_pricing_price Distribution of quoted prices.\n"
      "# TYPE prc_pricing_price histogram\n"
      "# UNIT prc_pricing_price price\n"
      "prc_pricing_price_bucket{le=\"1\"} 1\n"
      "prc_pricing_price_bucket{le=\"2\"} 3\n"
      "prc_pricing_price_bucket{le=\"+Inf\"} 6\n"
      "prc_pricing_price_sum 7.5\n"
      "prc_pricing_price_count 6\n";
  EXPECT_EQ(rendered, kGolden);
}

TEST(PrometheusRenderTest, UnknownMetricGetsPlaceholderHelp) {
  TelemetrySnapshot snapshot;
  snapshot.counters.emplace_back("zzz.unknown", 1);
  const std::string rendered = prometheus::render(snapshot);
  EXPECT_NE(rendered.find("(no registered metadata for zzz.unknown"),
            std::string::npos);
  EXPECT_NE(rendered.find("prc_zzz_unknown_total 1\n"), std::string::npos);
}

TEST(PrometheusRenderTest, CounterAlreadySuffixedIsNotDoubled) {
  TelemetrySnapshot snapshot;
  snapshot.counters.emplace_back("zzz.things_total", 2);
  const std::string rendered = prometheus::render(snapshot);
  EXPECT_NE(rendered.find("prc_zzz_things_total 2\n"), std::string::npos);
  EXPECT_EQ(rendered.find("_total_total"), std::string::npos);
}

TEST(PrometheusRenderTest, NonFiniteGaugeRoundTrips) {
  TelemetrySnapshot snapshot;
  snapshot.gauges.emplace_back("zzz.cap",
                               std::numeric_limits<double>::infinity());
  const std::string rendered = prometheus::render(snapshot);
  EXPECT_NE(rendered.find("prc_zzz_cap +Inf\n"), std::string::npos);
  const auto parsed = prometheus::parse_exposition(rendered);
  ASSERT_NE(parsed.find("prc_zzz_cap"), nullptr);
  EXPECT_TRUE(std::isinf(parsed.find("prc_zzz_cap")->samples[0].value));
}

TEST(PrometheusRenderTest, SanitizeMetricName) {
  EXPECT_EQ(prometheus::sanitize_metric_name("iot.round_duration_us"),
            "prc_iot_round_duration_us");
  EXPECT_EQ(prometheus::sanitize_metric_name("iot.station.cached_samples"),
            "prc_iot_station_cached_samples");
  EXPECT_EQ(prometheus::sanitize_metric_name("weird-name+x"),
            "prc_weird_name_x");
}

TEST(PrometheusRenderTest, ContentTypeIsExposition004) {
  EXPECT_EQ(std::string(prometheus::content_type()),
            "text/plain; version=0.0.4; charset=utf-8");
}

TEST(PrometheusRoundTripTest, LiveRegistryRendersAndParses) {
  Telemetry::registry().reset();
  telemetry::counter("market.sales").increment(5);
  telemetry::gauge("iot.round_coverage").set(0.75);
  auto& hist = telemetry::histogram("dp.answer_duration_us");
  hist.record(3.0);
  hist.record(250.0);
  hist.record(1e12);  // lands in the overflow bucket

  const auto snapshot = Telemetry::registry().snapshot();
  const std::string rendered = prometheus::render(snapshot);
  const auto parsed = prometheus::parse_exposition(rendered);
  ASSERT_EQ(parsed.families.size(), 3u);

  const auto* sales = parsed.find("prc_market_sales_total");
  ASSERT_NE(sales, nullptr);
  EXPECT_EQ(sales->type, "counter");
  ASSERT_EQ(sales->samples.size(), 1u);
  EXPECT_EQ(sales->samples[0].value, 5.0);

  const auto* coverage = parsed.find("prc_iot_round_coverage");
  ASSERT_NE(coverage, nullptr);
  EXPECT_EQ(coverage->type, "gauge");
  EXPECT_NEAR(coverage->samples[0].value, 0.75, 0.0);

  // parse_exposition already enforced le-ascending + cumulative +
  // +Inf == _count for the histogram; spot-check the series shape.
  const auto* latency = parsed.find("prc_dp_answer_duration_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->type, "histogram");
  double count = 0.0;
  bool saw_inf_bucket = false;
  for (const auto& sample : latency->samples) {
    if (sample.name == "prc_dp_answer_duration_us_count") {
      count = sample.value;
    }
    if (sample.label("le") == "+Inf") saw_inf_bucket = true;
  }
  EXPECT_EQ(count, 3.0);
  EXPECT_TRUE(saw_inf_bucket);
  Telemetry::registry().reset();
}

TEST(PrometheusParseTest, RejectsSampleBeforeType) {
  EXPECT_THROW(prometheus::parse_exposition("prc_x 1\n"),
               std::invalid_argument);
}

TEST(PrometheusParseTest, RejectsForeignSampleInFamily) {
  const std::string text =
      "# HELP prc_a help\n# TYPE prc_a counter\nprc_b 1\n";
  EXPECT_THROW(prometheus::parse_exposition(text), std::invalid_argument);
}

TEST(PrometheusParseTest, RejectsDuplicateType) {
  const std::string text =
      "# HELP prc_a help\n# TYPE prc_a counter\nprc_a 1\n"
      "# TYPE prc_a counter\nprc_a 2\n";
  EXPECT_THROW(prometheus::parse_exposition(text), std::invalid_argument);
}

TEST(PrometheusParseTest, RejectsMissingHelp) {
  EXPECT_THROW(
      prometheus::parse_exposition("# TYPE prc_a counter\nprc_a 1\n"),
      std::invalid_argument);
}

TEST(PrometheusParseTest, RejectsFamilyWithoutSamples) {
  EXPECT_THROW(
      prometheus::parse_exposition("# HELP prc_a help\n# TYPE prc_a gauge\n"),
      std::invalid_argument);
}

TEST(PrometheusParseTest, RejectsUnparseableValue) {
  const std::string text =
      "# HELP prc_a help\n# TYPE prc_a gauge\nprc_a banana\n";
  EXPECT_THROW(prometheus::parse_exposition(text), std::invalid_argument);
}

TEST(PrometheusParseTest, RejectsNonCumulativeHistogram) {
  const std::string text =
      "# HELP prc_h help\n"
      "# TYPE prc_h histogram\n"
      "prc_h_bucket{le=\"1\"} 5\n"
      "prc_h_bucket{le=\"2\"} 3\n"
      "prc_h_bucket{le=\"+Inf\"} 6\n"
      "prc_h_sum 9\n"
      "prc_h_count 6\n";
  EXPECT_THROW(prometheus::parse_exposition(text), std::invalid_argument);
}

TEST(PrometheusParseTest, RejectsInfBucketCountMismatch) {
  const std::string text =
      "# HELP prc_h help\n"
      "# TYPE prc_h histogram\n"
      "prc_h_bucket{le=\"1\"} 1\n"
      "prc_h_bucket{le=\"+Inf\"} 6\n"
      "prc_h_sum 9\n"
      "prc_h_count 7\n";
  EXPECT_THROW(prometheus::parse_exposition(text), std::invalid_argument);
}

TEST(PrometheusParseTest, ToleratesTimestampsAndUnitComments) {
  const std::string text =
      "# HELP prc_a help text with words\n"
      "# UNIT prc_a bytes\n"
      "# TYPE prc_a gauge\n"
      "prc_a 42 1700000000000\n";
  const auto parsed = prometheus::parse_exposition(text);
  ASSERT_EQ(parsed.families.size(), 1u);
  EXPECT_EQ(parsed.families[0].help, "help text with words");
  EXPECT_EQ(parsed.families[0].samples[0].value, 42.0);
}

TEST(MetricMetadataTest, TableIsUniqueAndComplete) {
  const auto& table = all_metric_metadata();
  ASSERT_FALSE(table.empty());
  std::set<std::string> names;
  std::set<std::string> sanitized;
  for (const auto& entry : table) {
    EXPECT_TRUE(names.insert(entry.name).second)
        << "duplicate metadata entry " << entry.name;
    EXPECT_TRUE(
        sanitized.insert(prometheus::sanitize_metric_name(entry.name)).second)
        << "sanitized-name collision for " << entry.name;
    EXPECT_NE(std::string(entry.unit), "") << entry.name << " has no unit";
    EXPECT_NE(std::string(entry.help), "") << entry.name << " has no help";
    EXPECT_NE(std::string(metric_kind_name(entry.kind)), "");
  }
}

TEST(MetricMetadataTest, LookupFindsRegisteredAndRejectsUnknown) {
  const MetricMetadata* sales = find_metric_metadata("market.sales");
  ASSERT_NE(sales, nullptr);
  EXPECT_EQ(sales->kind, MetricKind::kCounter);
  EXPECT_EQ(std::string(sales->unit), "sales");
  EXPECT_EQ(find_metric_metadata("zzz.not_a_metric"), nullptr);
}

}  // namespace
}  // namespace prc::telemetry
