// Continuous data collection: appends, dirty tracking, full-resync rounds,
// and estimator correctness over a stream of arrivals.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"
#include "estimator/rank_counting.h"
#include "iot/network.h"
#include "query/range_query.h"
#include "sampling/local_sampler.h"

namespace prc {
namespace {

TEST(LocalSamplerAppendTest, GrowsDataAndKeepsRanksSorted) {
  sampling::LocalSampler sampler({2.0, 6.0, 10.0});
  Rng rng(1);
  sampler.raise_probability(1.0, rng);
  sampler.append({4.0, 8.0}, rng);
  EXPECT_EQ(sampler.data_count(), 5u);
  const auto set = sampler.current_sample();
  ASSERT_EQ(set.size(), 5u);  // p = 1: newcomers all sampled
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set.samples()[i].rank, i + 1);
  }
  EXPECT_EQ(set.samples()[1].value, 4.0);  // rank 2 after re-sort
}

TEST(LocalSamplerAppendTest, EmptyAppendIsNoOp) {
  sampling::LocalSampler sampler({1.0});
  Rng rng(2);
  sampler.raise_probability(0.5, rng);
  const auto count = sampler.sample_count();
  sampler.append({}, rng);
  EXPECT_EQ(sampler.data_count(), 1u);
  EXPECT_EQ(sampler.sample_count(), count);
}

TEST(LocalSamplerAppendTest, NewcomersSampledAtCurrentProbability) {
  sampling::LocalSampler sampler(std::vector<double>(1000, 1.0));
  Rng rng(3);
  sampler.raise_probability(0.3, rng);
  const std::size_t before = sampler.sample_count();
  std::vector<double> fresh(20000, 2.0);
  sampler.append(fresh, rng);
  const double newcomer_rate =
      static_cast<double>(sampler.sample_count() - before) / 20000.0;
  EXPECT_NEAR(newcomer_rate, 0.3, 0.015);
}

TEST(LocalSamplerAppendTest, AppendThenTopUpKeepsMarginalInclusion) {
  // append at p=0.2 then raise to 0.5: every element (old or new) must end
  // up included with probability 0.5.
  const std::size_t n = 20000;
  std::vector<double> base(n, 1.0);
  sampling::LocalSampler sampler(base);
  Rng rng(4);
  sampler.raise_probability(0.2, rng);
  sampler.append(std::vector<double>(n, 2.0), rng);
  sampler.raise_probability(0.5, rng);
  EXPECT_NEAR(static_cast<double>(sampler.sample_count()) /
                  static_cast<double>(2 * n),
              0.5, 0.01);
}

TEST(SensorNodeStreamingTest, DirtyFlagLifecycle) {
  iot::SensorNode node(0, {1.0, 2.0}, Rng(5));
  EXPECT_FALSE(node.dirty());
  node.append_data({3.0});
  EXPECT_TRUE(node.dirty());
  const auto report = node.full_report();
  EXPECT_FALSE(node.dirty());
  EXPECT_EQ(report.data_count, 3u);
}

TEST(FlatNetworkStreamingTest, AppendUpdatesTotalsAfterRefresh) {
  iot::FlatNetwork network({{1.0, 2.0, 3.0}, {4.0, 5.0}});
  network.ensure_sampling_probability(0.5);
  EXPECT_EQ(network.base_station().total_data_count(), 5u);
  network.append_data(0, {10.0, 11.0});
  EXPECT_EQ(network.total_data_count(), 7u);
  // The station is stale until refresh.
  EXPECT_EQ(network.base_station().total_data_count(), 5u);
  EXPECT_EQ(network.refresh_samples(), 1u);
  EXPECT_EQ(network.base_station().total_data_count(), 7u);
  // Nothing dirty left.
  EXPECT_EQ(network.refresh_samples(), 0u);
}

TEST(FlatNetworkStreamingTest, RefreshChargesFullResend) {
  iot::FlatNetwork network({std::vector<double>(2000, 1.0)});
  network.ensure_sampling_probability(0.5);
  const auto bytes_before = network.stats().uplink_bytes;
  network.append_data(0, std::vector<double>(100, 2.0));
  network.refresh_samples();
  // Full sample (~1050 values * 16 bytes) re-shipped, not just the delta.
  EXPECT_GT(network.stats().uplink_bytes - bytes_before, 900u * 16u);
}

TEST(FlatNetworkStreamingTest, OfflineNodeDefersResync) {
  iot::FlatNetwork network({{1.0, 2.0}, {3.0, 4.0}});
  network.ensure_sampling_probability(0.5);
  network.append_data(1, {5.0});
  network.set_node_online(1, false);
  EXPECT_EQ(network.refresh_samples(), 0u);  // deferred
  network.set_node_online(1, true);
  EXPECT_EQ(network.refresh_samples(), 1u);
  EXPECT_EQ(network.base_station().total_data_count(), 5u);
}

TEST(FlatNetworkStreamingTest, EstimatesStayUnbiasedAcrossArrivals) {
  // Stream batches into the network and check the estimator tracks the
  // growing truth: mean estimate over trials stays within CI of the truth.
  const double p = 0.25;
  const query::RangeQuery range{100.5, 700.5};
  RunningStats final_estimates;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::vector<double>> initial(2);
    for (int v = 0; v < 400; ++v) {
      initial[v % 2].push_back(static_cast<double>(v));
    }
    iot::NetworkConfig config;
    config.seed = static_cast<std::uint64_t>(t) * 7 + 1;
    iot::FlatNetwork network(std::move(initial), config);
    network.ensure_sampling_probability(p);
    // Two arrival batches extend the domain to 0..799.
    std::vector<double> batch1, batch2;
    for (int v = 400; v < 600; ++v) batch1.push_back(static_cast<double>(v));
    for (int v = 600; v < 800; ++v) batch2.push_back(static_cast<double>(v));
    network.append_data(0, batch1);
    network.refresh_samples();
    network.append_data(1, batch2);
    network.refresh_samples();
    final_estimates.add(network.rank_counting_estimate(range));
  }
  const double truth = 600.0;  // values 101..700
  const double var_bound = 8.0 * 2.0 / (p * p);
  EXPECT_NEAR(final_estimates.mean(), truth,
              5.0 * std::sqrt(var_bound / trials));
  EXPECT_LE(final_estimates.variance(), var_bound * 1.1);
}

TEST(FlatNetworkStreamingTest, AppendToUnknownNodeThrows) {
  iot::FlatNetwork network(std::vector<std::vector<double>>{{1.0}});
  EXPECT_THROW(network.append_data(5, {2.0}), std::out_of_range);
}

}  // namespace
}  // namespace prc
