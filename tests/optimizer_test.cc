#include "dp/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/distributions.h"
#include "dp/amplification.h"
#include "estimator/accuracy.h"

namespace prc::dp {
namespace {

constexpr std::size_t kNodes = 8;
constexpr std::size_t kTotal = 17568;

TEST(OptimizerTest, RejectsBadConfiguration) {
  OptimizerConfig config;
  config.grid_points = 1;
  EXPECT_THROW(PerturbationOptimizer{config}, std::invalid_argument);
}

TEST(OptimizerTest, RejectsBadArguments) {
  const PerturbationOptimizer optimizer;
  EXPECT_THROW(optimizer.optimize({0.1, 0.5}, 0.0, kNodes, kTotal),
               std::invalid_argument);
  EXPECT_THROW(optimizer.optimize({0.1, 0.5}, 0.5, 0, kTotal),
               std::invalid_argument);
  EXPECT_THROW(optimizer.optimize({0.1, 0.5}, 0.5, kNodes, 0),
               std::invalid_argument);
}

TEST(OptimizerTest, InfeasibleWhenSamplesTooSparse) {
  const PerturbationOptimizer optimizer;
  // p far below the Theorem 3.3 requirement: no alpha' < alpha can reach
  // delta' > delta.
  const query::AccuracySpec spec{0.01, 0.9};
  const double p_req =
      estimator::required_sampling_probability(spec, kNodes, kTotal);
  const auto plan = optimizer.optimize(spec, p_req * 0.5, kNodes, kTotal);
  EXPECT_FALSE(plan.has_value());
}

TEST(OptimizerTest, PlanSatisfiesAllConstraints) {
  const PerturbationOptimizer optimizer;
  const query::AccuracySpec spec{0.05, 0.8};
  const double p = 0.3;
  const auto plan = optimizer.optimize(spec, p, kNodes, kTotal);
  ASSERT_TRUE(plan.has_value());

  // alpha' in (0, alpha), delta' in (delta, 1).
  EXPECT_GT(plan->alpha_prime, 0.0);
  EXPECT_LT(plan->alpha_prime, spec.alpha);
  EXPECT_GT(plan->delta_prime, spec.delta);
  EXPECT_LT(plan->delta_prime, 1.0);

  // delta' is exactly the accuracy achieved by the cached samples.
  EXPECT_NEAR(plan->delta_prime,
              estimator::achieved_delta(p, plan->alpha_prime, kNodes, kTotal),
              1e-9);

  // The tail constraint holds with equality at the optimum:
  // Pr[|Lap| <= (alpha - alpha') n] == delta / delta'.
  const Laplace noise(plan->laplace_scale);
  const double tail = noise.central_probability(
      (spec.alpha - plan->alpha_prime) * static_cast<double>(kTotal));
  EXPECT_NEAR(tail, spec.delta / plan->delta_prime, 1e-9);

  // Amplification is applied consistently.
  EXPECT_NEAR(plan->epsilon_amplified, amplified_epsilon(plan->epsilon, p),
              1e-12);
  // Cross-unit on purpose: Lemma 3.4 says the amplified budget sits
  // strictly below the base budget, so read both out explicitly.
  EXPECT_LT(plan->epsilon_amplified.value(), plan->epsilon.value());

  // Expected-sensitivity policy: 1/p.
  EXPECT_NEAR(plan->sensitivity, 1.0 / p, 1e-12);
  EXPECT_NEAR(plan->laplace_scale, plan->sensitivity / plan->epsilon, 1e-12);
}

TEST(OptimizerTest, ReturnedPlanIsGridOptimal) {
  // Re-derive epsilon' on a finer grid; the optimizer's answer must not be
  // beaten by more than the grid resolution effect.
  const PerturbationOptimizer optimizer({.grid_points = 512});
  const query::AccuracySpec spec{0.08, 0.7};
  const double p = 0.25;
  const auto plan = optimizer.optimize(spec, p, kNodes, kTotal);
  ASSERT_TRUE(plan.has_value());

  const double alpha_lo =
      estimator::min_feasible_alpha(p, spec.delta, kNodes, kTotal);
  double best = plan->epsilon_amplified;
  for (int i = 1; i <= 20000; ++i) {
    const double alpha_prime =
        alpha_lo + (spec.alpha - alpha_lo) * i / 20001.0;
    const double delta_prime =
        estimator::achieved_delta(p, alpha_prime, kNodes, kTotal);
    if (!(delta_prime > spec.delta)) continue;
    const double eps = (1.0 / p) /
                       ((spec.alpha - alpha_prime) * kTotal) *
                       std::log(delta_prime / (delta_prime - spec.delta));
    best = std::min(best, amplified_epsilon(eps, p).value());
  }
  EXPECT_LE(plan->epsilon_amplified, best * 1.001);
}

TEST(OptimizerTest, MoreSamplesNeverHurtPrivacy) {
  const PerturbationOptimizer optimizer;
  const query::AccuracySpec spec{0.05, 0.8};
  const auto plan_low = optimizer.optimize(spec, 0.2, kNodes, kTotal);
  const auto plan_high = optimizer.optimize(spec, 0.4, kNodes, kTotal);
  ASSERT_TRUE(plan_low.has_value());
  ASSERT_TRUE(plan_high.has_value());
  // With more samples the sampling phase is sharper, leaving more headroom
  // for noise — the optimal amplified budget cannot get worse.
  EXPECT_LE(plan_high->epsilon_amplified,
            plan_low->epsilon_amplified * 1.01);
}

TEST(OptimizerTest, StricterContractsCostMoreBudget) {
  const PerturbationOptimizer optimizer;
  const double p = 0.4;
  const auto loose = optimizer.optimize({0.10, 0.7}, p, kNodes, kTotal);
  const auto tight_alpha = optimizer.optimize({0.03, 0.7}, p, kNodes, kTotal);
  const auto tight_delta = optimizer.optimize({0.10, 0.95}, p, kNodes, kTotal);
  ASSERT_TRUE(loose && tight_alpha && tight_delta);
  EXPECT_GT(tight_alpha->epsilon_amplified, loose->epsilon_amplified);
  EXPECT_GT(tight_delta->epsilon_amplified, loose->epsilon_amplified);
}

TEST(OptimizerTest, WorstCaseSensitivityInflatesScale) {
  OptimizerConfig config;
  config.sensitivity_policy = SensitivityPolicy::kWorstCase;
  const PerturbationOptimizer worst(config);
  const PerturbationOptimizer expected;
  const query::AccuracySpec spec{0.05, 0.8};
  const double p = 0.3;
  const std::size_t max_ni = kTotal / kNodes;
  const auto w = worst.optimize(spec, p, kNodes, kTotal, max_ni);
  const auto e = expected.optimize(spec, p, kNodes, kTotal, max_ni);
  ASSERT_TRUE(w && e);
  EXPECT_GT(w->epsilon, e->epsilon);  // needs far more budget per unit noise
  EXPECT_NEAR(w->sensitivity, static_cast<double>(max_ni), 1e-9);
}

TEST(OptimizerTest, MinimumFeasibleProbabilityMatchesTheorem) {
  const PerturbationOptimizer optimizer;
  const query::AccuracySpec spec{0.05, 0.8};
  const double p_min =
      optimizer.minimum_feasible_probability(spec, kNodes, kTotal, 1.0);
  EXPECT_NEAR(
      p_min,
      std::min(1.0, estimator::required_sampling_probability(spec, kNodes,
                                                             kTotal)),
      1e-12);
  // With headroom 2 the optimizer must be feasible at the suggested p.
  const double p_headroom =
      optimizer.minimum_feasible_probability(spec, kNodes, kTotal, 2.0);
  EXPECT_TRUE(optimizer.optimize(spec, p_headroom, kNodes, kTotal)
                  .has_value());
  EXPECT_THROW(
      optimizer.minimum_feasible_probability(spec, kNodes, kTotal, 0.5),
      std::invalid_argument);
}

TEST(OptimizerTest, PlanVarianceCombinesSamplingAndNoise) {
  const PerturbationOptimizer optimizer;
  const query::AccuracySpec spec{0.05, 0.8};
  const double p = 0.3;
  const auto plan = optimizer.optimize(spec, p, kNodes, kTotal);
  ASSERT_TRUE(plan.has_value());
  const double expected = 8.0 * kNodes / (p * p) +
                          2.0 * plan->laplace_scale * plan->laplace_scale;
  EXPECT_NEAR(plan->total_variance(kNodes), expected, 1e-9);
}

TEST(OptimizerTest, ToStringMentionsKeyFields) {
  const PerturbationOptimizer optimizer;
  const auto plan = optimizer.optimize({0.05, 0.8}, 0.3, kNodes, kTotal);
  ASSERT_TRUE(plan.has_value());
  const std::string text = plan->to_string();
  EXPECT_NE(text.find("alpha'"), std::string::npos);
  EXPECT_NE(text.find("eps"), std::string::npos);
}

}  // namespace
}  // namespace prc::dp
