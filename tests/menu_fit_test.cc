#include <gtest/gtest.h>

#include <cmath>

#include "estimator/accuracy.h"
#include "pricing/arbitrage.h"
#include "pricing/pricing.h"

namespace prc::pricing {
namespace {

constexpr std::size_t kTotal = 17568;
constexpr std::size_t kNodes = 8;

VarianceModel model() { return VarianceModel(kTotal, kNodes); }

TEST(MenuFitTest, Validation) {
  EXPECT_THROW(fit_theorem_pricing(model(), {}), std::invalid_argument);
  EXPECT_THROW(
      fit_theorem_pricing(model(), {{query::AccuracySpec{0.1, 0.5}, 0.0}}),
      std::invalid_argument);
  EXPECT_THROW(FittedTheoremPricing(model(), 0.0), std::invalid_argument);
}

TEST(MenuFitTest, MenuAlreadyInFamilyFitsExactly) {
  const auto m = model();
  const double c = 5e8;
  std::vector<std::pair<query::AccuracySpec, double>> menu;
  for (const auto& spec :
       {query::AccuracySpec{0.05, 0.8}, query::AccuracySpec{0.1, 0.5},
        query::AccuracySpec{0.2, 0.6}}) {
    menu.emplace_back(spec, c / m.contract_variance(spec));
  }
  const auto fit = fit_theorem_pricing(m, menu);
  EXPECT_NEAR(fit.scale, c, c * 1e-12);
  EXPECT_NEAR(fit.max_relative_concession, 0.0, 1e-12);
}

TEST(MenuFitTest, FittedPriceNeverExceedsMenu) {
  const auto m = model();
  // An arbitrary hand-authored menu (not arbitrage-avoiding).
  const std::vector<std::pair<query::AccuracySpec, double>> menu = {
      {{0.05, 0.9}, 900.0}, {{0.10, 0.8}, 400.0}, {{0.20, 0.5}, 150.0}};
  const auto fit = fit_theorem_pricing(m, menu);
  const FittedTheoremPricing fitted(m, fit.scale);
  for (const auto& [spec, menu_price] : menu) {
    EXPECT_LE(fitted.price(spec), menu_price * (1.0 + 1e-12));
  }
  EXPECT_GE(fit.max_relative_concession, 0.0);
  EXPECT_LT(fit.max_relative_concession, 1.0);
}

TEST(MenuFitTest, FittedPricingPassesTheoremChecks) {
  const auto m = model();
  const std::vector<std::pair<query::AccuracySpec, double>> menu = {
      {{0.05, 0.9}, 900.0}, {{0.10, 0.8}, 400.0}, {{0.20, 0.5}, 150.0}};
  const auto fit = fit_theorem_pricing(m, menu);
  const FittedTheoremPricing fitted(m, fit.scale);
  const ArbitrageChecker checker(m);
  EXPECT_TRUE(checker.check(fitted).arbitrage_avoiding);
  const AttackSimulator simulator(m);
  EXPECT_FALSE(simulator.best_attack(fitted, {0.05, 0.9}).profitable);
}

TEST(MenuFitTest, ScaleIsRevenueMaximalWithinConstraint) {
  // Any larger scale would overcharge at the binding menu point.
  const auto m = model();
  const std::vector<std::pair<query::AccuracySpec, double>> menu = {
      {{0.05, 0.9}, 900.0}, {{0.10, 0.8}, 400.0}};
  const auto fit = fit_theorem_pricing(m, menu);
  bool binding_found = false;
  for (const auto& [spec, menu_price] : menu) {
    const double fitted_price = fit.scale / m.contract_variance(spec);
    if (std::abs(fitted_price - menu_price) < menu_price * 1e-9) {
      binding_found = true;
    }
  }
  EXPECT_TRUE(binding_found);
}

TEST(ErrorBoundTest, ChebyshevHalfWidth) {
  using estimator::error_bound_at_confidence;
  // variance = 8k/p^2; t = sqrt(var / (1-c)).
  const double t = error_bound_at_confidence(0.2, 8, 0.75);
  EXPECT_NEAR(t, std::sqrt(8.0 * 8.0 / 0.04 / 0.25), 1e-9);
  // Tighter confidence -> wider interval; more samples -> narrower.
  EXPECT_GT(error_bound_at_confidence(0.2, 8, 0.9),
            error_bound_at_confidence(0.2, 8, 0.5));
  EXPECT_LT(error_bound_at_confidence(0.4, 8, 0.75), t);
  EXPECT_THROW(error_bound_at_confidence(0.0, 8, 0.5),
               std::invalid_argument);
  EXPECT_THROW(error_bound_at_confidence(0.2, 8, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace prc::pricing
