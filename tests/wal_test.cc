// Wire-format coverage for the market write-ahead log: field-exhaustive
// round-trips, version gating, CRC rejection under bit flips, and the
// truncate-at-corruption reader contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "market/ledger.h"
#include "market/wal.h"

namespace prc::market::wal {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "prc_wal_test_" + name;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

IntentRecord sample_intent() {
  IntentRecord intent;
  intent.wal_sequence = 7;
  intent.consumer_id = "alice";
  intent.range = {12.5, 9001.25};
  intent.spec = {0.07, 0.83};
  intent.epsilon_amplified = 0.0123456789;
  return intent;
}

CommitRecord sample_commit() {
  CommitRecord commit;
  commit.wal_sequence = 8;
  commit.intent_sequence = 7;
  commit.transaction.sequence = 41;
  commit.transaction.consumer_id = "mallory";
  commit.transaction.range = {-3.5, 17.0};
  commit.transaction.spec = {0.21, 0.55};
  commit.transaction.price = 123.75;
  commit.transaction.epsilon_amplified = 0.0625;
  commit.transaction.coverage = 0.875;
  commit.transaction.degraded = true;
  return commit;
}

LedgerSnapshot sample_snapshot() {
  LedgerSnapshot snapshot;
  snapshot.next_sequence = 42;
  snapshot.total_revenue = 512.125;
  snapshot.total_epsilon = 0.75;
  snapshot.orphaned_epsilon = 0.125;
  snapshot.degraded_sales = 3;
  snapshot.consumers = {{"alice", 100.5, 0.25}, {"mallory", 411.625, 0.5}};
  return snapshot;
}

TEST(WalFormatTest, IntentRoundTripsEveryField) {
  const auto intent = sample_intent();
  const auto decoded = decode_record(encode_intent(intent), 0);
  ASSERT_EQ(decoded.type, RecordType::kIntent);
  EXPECT_EQ(decoded.wal_sequence, 7u);
  EXPECT_EQ(decoded.intent.wal_sequence, 7u);
  EXPECT_EQ(decoded.intent.consumer_id, "alice");
  EXPECT_DOUBLE_EQ(decoded.intent.range.lower, 12.5);
  EXPECT_DOUBLE_EQ(decoded.intent.range.upper, 9001.25);
  EXPECT_DOUBLE_EQ(decoded.intent.spec.alpha.value(), 0.07);
  EXPECT_DOUBLE_EQ(decoded.intent.spec.delta.value(), 0.83);
  EXPECT_DOUBLE_EQ(decoded.intent.epsilon_amplified.value(), 0.0123456789);
}

TEST(WalFormatTest, CommitRoundTripsEveryTransactionField) {
  const auto commit = sample_commit();
  const auto decoded = decode_record(encode_commit(commit), 0);
  ASSERT_EQ(decoded.type, RecordType::kCommit);
  EXPECT_EQ(decoded.commit.intent_sequence, 7u);
  const auto& txn = decoded.commit.transaction;
  EXPECT_EQ(txn.sequence, 41u);
  EXPECT_EQ(txn.consumer_id, "mallory");
  EXPECT_DOUBLE_EQ(txn.range.lower, -3.5);
  EXPECT_DOUBLE_EQ(txn.range.upper, 17.0);
  EXPECT_DOUBLE_EQ(txn.spec.alpha.value(), 0.21);
  EXPECT_DOUBLE_EQ(txn.spec.delta.value(), 0.55);
  EXPECT_DOUBLE_EQ(txn.price, 123.75);
  EXPECT_DOUBLE_EQ(txn.epsilon_amplified.value(), 0.0625);
  EXPECT_DOUBLE_EQ(txn.coverage, 0.875);
  EXPECT_TRUE(txn.degraded);
}

TEST(WalFormatTest, CommitRoundTripsNonDegradedFlag) {
  auto commit = sample_commit();
  commit.transaction.degraded = false;
  const auto decoded = decode_record(encode_commit(commit), 0);
  EXPECT_FALSE(decoded.commit.transaction.degraded);
}

TEST(WalFormatTest, CheckpointRoundTripsAggregatesAndConsumers) {
  const auto snapshot = sample_snapshot();
  const auto decoded = decode_record(encode_checkpoint(snapshot, 9), 0);
  ASSERT_EQ(decoded.type, RecordType::kCheckpoint);
  EXPECT_EQ(decoded.wal_sequence, 9u);
  const auto& restored = decoded.checkpoint;
  EXPECT_EQ(restored.next_sequence, 42u);
  EXPECT_DOUBLE_EQ(restored.total_revenue, 512.125);
  EXPECT_DOUBLE_EQ(restored.total_epsilon.value(), 0.75);
  EXPECT_DOUBLE_EQ(restored.orphaned_epsilon.value(), 0.125);
  EXPECT_EQ(restored.degraded_sales, 3u);
  ASSERT_EQ(restored.consumers.size(), 2u);
  EXPECT_EQ(restored.consumers[0].consumer_id, "alice");
  EXPECT_DOUBLE_EQ(restored.consumers[0].spend, 100.5);
  EXPECT_DOUBLE_EQ(restored.consumers[0].epsilon.value(), 0.25);
  EXPECT_EQ(restored.consumers[1].consumer_id, "mallory");
  EXPECT_DOUBLE_EQ(restored.consumers[1].spend, 411.625);
  EXPECT_DOUBLE_EQ(restored.consumers[1].epsilon.value(), 0.5);
}

TEST(WalFormatTest, UnknownVersionIsRejectedBeforeCrc) {
  auto bytes = encode_intent(sample_intent());
  bytes[1] = kFormatVersion + 1;
  try {
    decode_record(bytes, 0);
    FAIL() << "future version accepted";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(WalFormatTest, EveryBitFlipIsRejected) {
  // CRC32 detects all single-bit errors, so no flipped record may decode:
  // either a structural check (magic/version/type/length) or the CRC must
  // fire.  Exhaustive over every bit of every byte, header and payload.
  const auto pristine = encode_commit(sample_commit());
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = pristine;
      corrupt[byte] = static_cast<std::uint8_t>(corrupt[byte] ^ (1u << bit));
      EXPECT_THROW(decode_record(corrupt, 0), FormatError)
          << "flip of byte " << byte << " bit " << bit << " decoded";
    }
  }
}

TEST(WalFormatTest, TornHeaderAndTornPayloadAreRejected) {
  const auto bytes = encode_intent(sample_intent());
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    const std::vector<std::uint8_t> torn(bytes.begin(),
                                         bytes.begin() +
                                             static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(decode_record(torn, 0), FormatError)
        << "torn record of " << keep << " bytes decoded";
  }
}

TEST(WalReaderTest, MissingFileIsAnEmptyLog) {
  const auto result = read_wal(temp_path("does_not_exist.wal"));
  EXPECT_EQ(result.stats.records_read, 0u);
  EXPECT_EQ(result.stats.truncated_bytes, 0u);
  EXPECT_TRUE(result.commits.empty());
  EXPECT_TRUE(result.orphans.empty());
}

TEST(WalReaderTest, GarbageFileIsAllTruncated) {
  const auto path = temp_path("garbage.wal");
  write_bytes(path, {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02});
  const auto result = read_wal(path);
  EXPECT_EQ(result.stats.records_read, 0u);
  EXPECT_EQ(result.stats.truncated_bytes, 7u);
  std::remove(path.c_str());
}

TEST(WalReaderTest, StopsCleanlyAtTornTail) {
  const auto path = temp_path("torn_tail.wal");
  auto intent = sample_intent();
  auto bytes = encode_intent(intent);
  auto commit = sample_commit();
  commit.transaction.sequence = 0;  // replayable onto an empty ledger
  const auto commit_bytes = encode_commit(commit);
  bytes.insert(bytes.end(), commit_bytes.begin(), commit_bytes.end());
  // A third record, torn mid-payload (a crash mid-append).
  auto torn = encode_intent(sample_intent());
  bytes.insert(bytes.end(), torn.begin(), torn.end() - 5);
  write_bytes(path, bytes);

  const auto result = read_wal(path);
  EXPECT_EQ(result.stats.records_read, 2u);
  EXPECT_EQ(result.stats.truncated_bytes, torn.size() - 5);
  EXPECT_EQ(result.stats.committed_sales, 1u);
  // The commit resolved the intent with the matching sequence.
  EXPECT_EQ(result.stats.orphaned_intents, 0u);
  std::remove(path.c_str());
}

TEST(WalReaderTest, BitFlippedTailIsTruncatedNotTrusted) {
  const auto path = temp_path("flipped_tail.wal");
  auto commit = sample_commit();
  commit.transaction.sequence = 0;
  commit.intent_sequence = 99;  // unresolved elsewhere; irrelevant here
  auto bytes = encode_commit(commit);
  const std::size_t first_size = bytes.size();
  auto second = encode_checkpoint(sample_snapshot(), 10);
  bytes.insert(bytes.end(), second.begin(), second.end());
  bytes[first_size + 25] ^= 0x10;  // corrupt the second record's payload
  write_bytes(path, bytes);

  const auto result = read_wal(path);
  EXPECT_EQ(result.stats.records_read, 1u);
  EXPECT_EQ(result.stats.valid_bytes, first_size);
  EXPECT_EQ(result.stats.truncated_bytes, second.size());
  EXPECT_EQ(result.stats.checkpoints_seen, 0u);
  std::remove(path.c_str());
}

TEST(WalRecoveryTest, UnresolvedIntentBecomesOrphanChargedAsSpent) {
  const auto path = temp_path("orphan.wal");
  std::remove(path.c_str());
  {
    auto log = WriteAheadLog::open(path);
    auto intent = sample_intent();
    log->append_intent(intent);
  }
  const auto result = read_wal(path);
  ASSERT_EQ(result.stats.orphaned_intents, 1u);
  EXPECT_DOUBLE_EQ(result.stats.orphaned_epsilon, 0.0123456789);

  Ledger ledger;
  apply_recovery(ledger, result);
  EXPECT_DOUBLE_EQ(ledger.total_epsilon().value(), 0.0123456789);
  EXPECT_DOUBLE_EQ(ledger.orphaned_epsilon().value(), 0.0123456789);
  EXPECT_DOUBLE_EQ(ledger.total_revenue(), 0.0);  // orphans earn nothing
  EXPECT_DOUBLE_EQ(ledger.consumer_epsilon("alice").value(), 0.0123456789);
  EXPECT_LE(ledger.conservation_discrepancy(), 1e-12);
  std::remove(path.c_str());
}

TEST(WalRecoveryTest, SequenceGapBurnsSlotAndKeepsOrder) {
  // Sale 0 committed, sale 1's commit lost (its intent orphans), sale 2
  // committed: replay must keep the original sequence numbers 0 and 2.
  const auto path = temp_path("gap.wal");
  std::remove(path.c_str());
  {
    auto log = WriteAheadLog::open(path);
    CommitRecord first = sample_commit();
    first.transaction.sequence = 0;
    first.transaction.degraded = false;
    log->append_commit(first);
    IntentRecord lost = sample_intent();
    const auto lost_id = log->append_intent(lost);
    (void)lost_id;
    CommitRecord third = sample_commit();
    third.intent_sequence = 999;  // resolves nothing
    third.transaction.sequence = 2;
    third.transaction.degraded = false;
    log->append_commit(third);
  }
  const auto result = read_wal(path);
  EXPECT_EQ(result.stats.committed_sales, 2u);
  EXPECT_EQ(result.stats.orphaned_intents, 1u);

  Ledger ledger;
  apply_recovery(ledger, result);
  const auto transactions = ledger.transactions_snapshot();
  ASSERT_EQ(transactions.size(), 2u);
  EXPECT_EQ(transactions[0].sequence, 0u);
  EXPECT_EQ(transactions[1].sequence, 2u);
  // The next live sale must not reuse a durable sequence.
  const auto next = ledger.record({0, "carol", {0, 1}, {0.1, 0.5}, 1.0, 0.01});
  EXPECT_EQ(next, 3u);
  std::remove(path.c_str());
}

TEST(WalRecoveryTest, CheckpointAbsorbsPriorCommits) {
  const auto path = temp_path("checkpoint.wal");
  std::remove(path.c_str());
  {
    auto log = WriteAheadLog::open(path);
    CommitRecord early = sample_commit();
    early.transaction.sequence = 41;  // below the checkpoint's next_sequence
    log->append_commit(early);
    log->append_checkpoint(sample_snapshot());  // next_sequence = 42
    CommitRecord late = sample_commit();
    late.intent_sequence = 999;
    late.transaction.sequence = 42;
    late.transaction.consumer_id = "alice";
    log->append_commit(late);
  }
  const auto result = read_wal(path);
  EXPECT_EQ(result.stats.checkpoints_seen, 1u);
  // Only the post-checkpoint commit replays; the early one is aggregated.
  ASSERT_EQ(result.commits.size(), 1u);
  EXPECT_EQ(result.commits[0].transaction.sequence, 42u);

  Ledger ledger;
  apply_recovery(ledger, result);
  EXPECT_DOUBLE_EQ(ledger.total_revenue(),
                   sample_snapshot().total_revenue + 123.75);
  EXPECT_EQ(ledger.degraded_sales(), 4u);  // 3 from checkpoint + 1 replayed
  EXPECT_LE(ledger.conservation_discrepancy(),
            1e-9 * (1.0 + ledger.total_epsilon().value() +
                    ledger.total_revenue()));
  std::remove(path.c_str());
}

TEST(WalRecoveryTest, CommitRacedPastItsCheckpointIsAbsorbedNotReplayed) {
  // Regression: a checkpoint taken concurrently with a sale can reach the
  // log BEFORE that sale's commit record (the committing thread sat
  // between its ledger update and its WAL append while the checkpoint
  // snapshotted a ledger that already covered it).  Such a late commit
  // must be absorbed like any pre-checkpoint commit — replaying it used
  // to trip the replay-order audit on EVERY recovery attempt, leaving the
  // log permanently unrecoverable.
  const auto path = temp_path("checkpoint_race.wal");
  std::remove(path.c_str());
  Ledger live;
  const Transaction first_sale{0, "alice", {0, 1}, {0.1, 0.5}, 10.0, 0.01};
  const Transaction raced_sale{0, "bob", {0, 1}, {0.1, 0.5}, 20.0, 0.02};
  Transaction t0 = first_sale;
  t0.sequence = live.record(first_sale);
  Transaction t1 = raced_sale;
  t1.sequence = live.record(raced_sale);
  {
    auto log = WriteAheadLog::open(path);
    CommitRecord c0;
    c0.intent_sequence = 100;
    c0.transaction = t0;
    log->append_commit(c0);
    // The checkpoint snapshots AFTER bob's ledger commit but BEFORE his
    // commit record reaches the log: next_sequence already covers him.
    log->append_checkpoint(live.snapshot());
    CommitRecord c1;
    c1.intent_sequence = 101;
    c1.transaction = t1;
    log->append_commit(c1);
  }
  const auto result = read_wal(path);
  EXPECT_EQ(result.stats.checkpoints_seen, 1u);
  EXPECT_TRUE(result.commits.empty());  // both absorbed by the checkpoint

  Ledger recovered;
  apply_recovery(recovered, result);  // must not throw
  EXPECT_DOUBLE_EQ(recovered.total_revenue(), 30.0);
  EXPECT_DOUBLE_EQ(recovered.total_epsilon().value(),
                   live.total_epsilon().value());
  EXPECT_DOUBLE_EQ(recovered.consumer_epsilon("bob").value(), 0.02);
  // The books reopen past the durable history, not on a burned slot.
  EXPECT_EQ(recovered.record({0, "carol", {0, 1}, {0.1, 0.5}, 1.0, 0.01}),
            2u);
  std::remove(path.c_str());
}

TEST(WalWriterTest, MediaDurableModeAppendsAndReadsBack) {
  // fsync-per-append is a durability upgrade, not a format change: a log
  // written under kMediaDurable must read back exactly like any other.
  const auto path = temp_path("fsync.wal");
  std::remove(path.c_str());
  {
    auto log = WriteAheadLog::open(path, 0, SyncMode::kMediaDurable);
    const auto intent_sequence = log->append_intent(sample_intent());
    CommitRecord commit = sample_commit();
    commit.transaction.sequence = 0;
    commit.intent_sequence = intent_sequence;
    log->append_commit(commit);
    EXPECT_EQ(log->records_appended(), 2u);
  }
  const auto result = read_wal(path);
  EXPECT_EQ(result.stats.records_read, 2u);
  EXPECT_EQ(result.stats.committed_sales, 1u);
  EXPECT_EQ(result.stats.orphaned_intents, 0u);
  std::remove(path.c_str());
}

TEST(WalRecoveryTest, CompactionFoldsLogToOneCheckpoint) {
  const auto path = temp_path("compact.wal");
  std::remove(path.c_str());
  {
    auto log = WriteAheadLog::open(path);
    CommitRecord commit = sample_commit();
    commit.transaction.sequence = 0;
    log->append_commit(commit);
    log->append_intent(sample_intent());
  }
  auto first = read_wal(path);
  Ledger ledger;
  apply_recovery(ledger, first);
  const double epsilon_once = ledger.total_epsilon().value();

  // Compact, then recover AGAIN from the compacted log: totals must be
  // identical — in particular the orphan must not be charged twice.
  auto log = WriteAheadLog::compact(path, ledger.snapshot(),
                                    first.next_wal_sequence);
  log.reset();
  const auto second = read_wal(path);
  EXPECT_EQ(second.stats.records_read, 1u);
  EXPECT_EQ(second.stats.orphaned_intents, 0u);
  Ledger ledger2;
  apply_recovery(ledger2, second);
  EXPECT_DOUBLE_EQ(ledger2.total_epsilon().value(), epsilon_once);
  EXPECT_DOUBLE_EQ(ledger2.total_revenue(), ledger.total_revenue());
  EXPECT_DOUBLE_EQ(ledger2.orphaned_epsilon().value(),
                   ledger.orphaned_epsilon().value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prc::market::wal
