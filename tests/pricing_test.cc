#include <gtest/gtest.h>

#include <cmath>

#include "pricing/arbitrage.h"
#include "pricing/pricing.h"
#include "pricing/variance_model.h"

namespace prc::pricing {
namespace {

constexpr std::size_t kTotal = 17568;
constexpr std::size_t kNodes = 8;
const query::AccuracySpec kReference{0.1, 0.5};

VarianceModel model() { return VarianceModel(kTotal, kNodes); }

TEST(VarianceModelTest, ContractVarianceFormula) {
  const query::AccuracySpec spec{0.1, 0.75};
  const double expected = (0.1 * kTotal) * (0.1 * kTotal) * 0.25;
  EXPECT_NEAR(model().contract_variance(spec), expected, 1e-6);
}

TEST(VarianceModelTest, Monotonicity) {
  const auto m = model();
  // Increasing alpha increases variance (coarser answer).
  EXPECT_LT(m.contract_variance({0.05, 0.5}), m.contract_variance({0.1, 0.5}));
  // Increasing delta decreases variance (more confident answer).
  EXPECT_GT(m.contract_variance({0.1, 0.5}), m.contract_variance({0.1, 0.9}));
}

TEST(VarianceModelTest, AlphaForVarianceInverts) {
  const auto m = model();
  const query::AccuracySpec spec{0.07, 0.65};
  const double v = m.contract_variance(spec);
  EXPECT_NEAR(m.alpha_for_variance(v, spec.delta), spec.alpha, 1e-12);
  EXPECT_THROW(m.alpha_for_variance(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(m.alpha_for_variance(1.0, 1.0), std::invalid_argument);
}

TEST(VarianceModelTest, ConstructionValidation) {
  EXPECT_THROW(VarianceModel(0, 5), std::invalid_argument);
  EXPECT_THROW(VarianceModel(100, 0), std::invalid_argument);
}

TEST(InverseVariancePricingTest, AnchoredAtReference) {
  const InverseVariancePricing pricing(model(), kReference, 50.0);
  EXPECT_NEAR(pricing.price(kReference), 50.0, 1e-9);
}

TEST(InverseVariancePricingTest, MonotoneTheRightWay) {
  const InverseVariancePricing pricing(model(), kReference, 50.0);
  // Stricter alpha (lower variance) costs more.
  EXPECT_GT(pricing.price({0.05, 0.5}), pricing.price({0.1, 0.5}));
  // Higher confidence costs more.
  EXPECT_GT(pricing.price({0.1, 0.9}), pricing.price({0.1, 0.5}));
}

TEST(InverseVariancePricingTest, RejectsNonPositiveParameters) {
  EXPECT_THROW(InverseVariancePricing(model(), kReference, 50.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(InverseVariancePricing(model(), kReference, 50.0, -1.0),
               std::invalid_argument);
  EXPECT_THROW(InverseVariancePricing(model(), kReference, 0.0),
               std::invalid_argument);
}

TEST(LinearDiscountPricingTest, BasicShape) {
  const LinearDiscountPricing pricing(1.0, 10.0, 5.0);
  EXPECT_NEAR(pricing.price({0.5, 0.5}), 1.0 + 10.0 * 0.5 + 5.0 * 0.5, 1e-12);
  EXPECT_GT(pricing.price({0.1, 0.5}), pricing.price({0.5, 0.5}));
  EXPECT_THROW(LinearDiscountPricing(0.0, 1.0, 1.0), std::invalid_argument);
}

// --- Theorem 4.2 checker ---------------------------------------------------

TEST(ArbitrageCheckerTest, UnitExponentPasses) {
  const ArbitrageChecker checker(model());
  const InverseVariancePricing pricing(model(), kReference, 50.0, 1.0);
  const auto report = checker.check(pricing);
  EXPECT_TRUE(report.arbitrage_avoiding);
  EXPECT_GT(report.checks_performed, 1000u);
  EXPECT_TRUE(report.violations.empty());
}

TEST(ArbitrageCheckerTest, SteepExponentFailsProperty3) {
  // q > 1: price decays faster than 1/V — the relative price drop along the
  // alpha axis exceeds the relative variance increase.
  const ArbitrageChecker checker(model());
  const InverseVariancePricing pricing(model(), kReference, 50.0, 2.0);
  const auto report = checker.check(pricing);
  EXPECT_FALSE(report.arbitrage_avoiding);
  bool property3 = false;
  for (const auto& v : report.violations) {
    if (v.property == 3) property3 = true;
  }
  EXPECT_TRUE(property3);
}

TEST(ArbitrageCheckerTest, ShallowExponentFailsProperty2) {
  // q < 1: price rises too little when the customer pays for confidence —
  // the relative price increase along the delta axis undershoots the
  // relative variance decrease.
  const ArbitrageChecker checker(model());
  const InverseVariancePricing pricing(model(), kReference, 50.0, 0.5);
  const auto report = checker.check(pricing);
  EXPECT_FALSE(report.arbitrage_avoiding);
  bool property2 = false;
  for (const auto& v : report.violations) {
    if (v.property == 2) property2 = true;
  }
  EXPECT_TRUE(property2);
}

TEST(ArbitrageCheckerTest, LinearPricingFailsProperty1) {
  const ArbitrageChecker checker(model());
  const LinearDiscountPricing pricing(1.0, 10.0, 5.0);
  const auto report = checker.check(pricing);
  EXPECT_FALSE(report.arbitrage_avoiding);
  ASSERT_FALSE(report.violations.empty());
  bool property1_violated = false;
  for (const auto& v : report.violations) {
    if (v.property == 1) property1_violated = true;
    EXPECT_FALSE(v.to_string().empty());
  }
  EXPECT_TRUE(property1_violated);
}

struct ExponentVerdict {
  double exponent;
  bool avoiding;            // checker verdict
  bool averaging_attackable;  // attack-simulator verdict
};

class ExponentSweep : public ::testing::TestWithParam<ExponentVerdict> {};

TEST_P(ExponentSweep, CheckerAndSimulatorAgreeWithTheory) {
  const auto [exponent, avoiding, attackable] = GetParam();
  const InverseVariancePricing pricing(model(), kReference, 50.0, exponent);
  const ArbitrageChecker checker(model());
  EXPECT_EQ(checker.check(pricing).arbitrage_avoiding, avoiding)
      << "q=" << exponent;
  const AttackSimulator simulator(model());
  EXPECT_EQ(simulator.best_attack(pricing, {0.05, 0.9}).profitable,
            attackable)
      << "q=" << exponent;
}

INSTANTIATE_TEST_SUITE_P(
    PowerFamily, ExponentSweep,
    ::testing::Values(
        // q < 1: violates Thm 4.2 (property 2) but averaging cannot profit.
        ExponentVerdict{0.5, false, false},
        ExponentVerdict{0.75, false, false},
        // q = 1: the theorem family; break-even against averaging.
        ExponentVerdict{1.0, true, false},
        // q > 1: violates property 3 AND is strictly attackable.
        ExponentVerdict{1.5, false, true},
        ExponentVerdict{2.0, false, true},
        ExponentVerdict{3.0, false, true}),
    [](const ::testing::TestParamInfo<ExponentVerdict>& case_info) {
      return "q" + std::to_string(
                       static_cast<int>(case_info.param.exponent * 100));
    });

TEST(ArbitrageCheckerTest, GridValidation) {
  ArbitrageChecker::Grid bad;
  bad.alpha_steps = 1;
  EXPECT_THROW(ArbitrageChecker(model(), bad), std::invalid_argument);
  ArbitrageChecker::Grid inverted;
  inverted.alpha_min = 0.9;
  inverted.alpha_max = 0.1;
  EXPECT_THROW(ArbitrageChecker(model(), inverted), std::invalid_argument);
}

// --- attack simulator ------------------------------------------------------

TEST(AttackSimulatorTest, BeatsSteepDiscountPricing) {
  // q = 2 decays faster than 1/V: m weak queries with V_i ~ m * V cost about
  // pi / m — the textbook Example 4.1 arbitrage.
  const AttackSimulator simulator(model());
  const InverseVariancePricing pricing(model(), kReference, 50.0, 2.0);
  const query::AccuracySpec target{0.05, 0.9};
  const auto result = simulator.best_attack(pricing, target);
  EXPECT_TRUE(result.profitable);
  EXPECT_GE(result.copies, 2u);
  EXPECT_LT(result.best_attack_cost, result.honest_price);
  EXPECT_GT(result.savings(), 0.3);  // q=2 is badly exposed
  // The attack's averaged answer is genuinely as good as the honest one.
  EXPECT_LE(result.combined_variance,
            model().contract_variance(target) * (1.0 + 1e-9));
  // The weaker contract really is weaker.
  EXPECT_GT(result.weaker_spec.alpha, target.alpha);
  EXPECT_LT(result.weaker_spec.delta, target.delta);
}

TEST(AttackSimulatorTest, CannotBeatTheoremFamily) {
  // q <= 1 never loses to the averaging adversary (q < 1 still violates
  // Theorem 4.2 property 2, but that failure is not exploitable by simple
  // averaging — the checker is deliberately stricter than this simulator).
  const AttackSimulator simulator(model());
  for (double q : {1.0, 0.75}) {
    const InverseVariancePricing pricing(model(), kReference, 50.0, q);
    for (const auto& target :
         {query::AccuracySpec{0.05, 0.9}, query::AccuracySpec{0.1, 0.7},
          query::AccuracySpec{0.02, 0.5}}) {
      const auto result = simulator.best_attack(pricing, target);
      EXPECT_FALSE(result.profitable)
          << "q=" << q << " target=" << target.to_string();
      EXPECT_EQ(result.copies, 0u);
      EXPECT_DOUBLE_EQ(result.best_attack_cost, result.honest_price);
      EXPECT_EQ(result.savings(), 0.0);
    }
  }
}

TEST(AttackSimulatorTest, ExactlyUnitExponentIsBreakEven) {
  // With q = 1 the symmetric attack at equal variance budget costs exactly
  // the honest price: m * c * V_ref / (m V) == c * V_ref / V.  Verify no
  // strict profit is reported (boundary of the Thm 4.2 condition).
  const AttackSimulator simulator(model());
  const InverseVariancePricing pricing(model(), kReference, 100.0, 1.0);
  const auto result = simulator.best_attack(pricing, {0.08, 0.8});
  EXPECT_FALSE(result.profitable);
}

TEST(AttackSimulatorTest, AsymmetricAttackSpotCheck) {
  // Hand-built *asymmetric* two-query attack (the simulator only searches
  // symmetric ones): both weak contracts differ, their average meets the
  // target's variance budget, and the bundle is cheaper under q = 2 but not
  // under the Theorem 4.2 family q = 1.
  const auto m = model();
  const query::AccuracySpec target{0.05, 0.9};
  const query::AccuracySpec weak1{0.055, 0.85};
  const query::AccuracySpec weak2{0.057, 0.86};
  const double combined =
      (m.contract_variance(weak1) + m.contract_variance(weak2)) / 4.0;
  ASSERT_LE(combined, m.contract_variance(target));  // attack is valid

  const InverseVariancePricing steep(m, kReference, 50.0, 2.0);
  EXPECT_LT(steep.price(weak1) + steep.price(weak2), steep.price(target));

  const InverseVariancePricing safe(m, kReference, 50.0, 1.0);
  EXPECT_GE(safe.price(weak1) + safe.price(weak2), safe.price(target));
}

TEST(AttackSimulatorTest, SearchSpaceValidation) {
  AttackSimulator::SearchSpace bad;
  bad.max_copies = 1;
  EXPECT_THROW(AttackSimulator(model(), bad), std::invalid_argument);
}

}  // namespace
}  // namespace prc::pricing
