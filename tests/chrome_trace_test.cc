// Chrome trace_event export: span counts, thread ids, nesting containment,
// drop accounting (trace.spans_dropped gauge + flame_text warning).
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "common/telemetry.h"
#include "common/trace.h"

namespace prc::trace {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

void reset_tracer() {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  tracer.set_capacity(4096);
  tracer.clear();
}

TEST(ChromeTraceTest, ExportsOneCompleteEventPerSpan) {
  reset_tracer();
  {
    PRC_TRACE_SPAN("outer");
    { PRC_TRACE_SPAN("inner"); }
    { PRC_TRACE_SPAN("inner"); }
  }
  const auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 3u);
  const std::string json = Tracer::instance().to_chrome_json();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"name\": \"inner\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"name\": \"outer\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"cat\": \"prc\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"pid\": 1"), 3u);
}

TEST(ChromeTraceTest, NestedSpanIsContainedInParent) {
  reset_tracer();
  {
    PRC_TRACE_SPAN("parent");
    PRC_TRACE_SPAN("child");
  }
  const auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord* parent = nullptr;
  const SpanRecord* child = nullptr;
  for (const auto& span : spans) {
    (span.depth == 0 ? parent : child) = &span;
  }
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->parent_id, parent->id);
  EXPECT_EQ(child->depth, 1u);
  EXPECT_GE(child->start_ns, parent->start_ns);
  EXPECT_LE(child->start_ns + child->duration_ns,
            parent->start_ns + parent->duration_ns);
  // Same thread: parent and child carry the same tid in the export.
  EXPECT_EQ(child->tid, parent->tid);
}

TEST(ChromeTraceTest, SpansFromDifferentThreadsGetDifferentTids) {
  reset_tracer();
  { PRC_TRACE_SPAN("main_thread"); }
  std::thread worker([] { PRC_TRACE_SPAN("worker_thread"); });
  worker.join();
  const auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  std::uint32_t main_tid = 0;
  std::uint32_t worker_tid = 0;
  for (const auto& span : spans) {
    if (span.name == "main_thread") main_tid = span.tid;
    if (span.name == "worker_thread") worker_tid = span.tid;
  }
  EXPECT_GE(main_tid, 1u);
  EXPECT_GE(worker_tid, 1u);
  EXPECT_NE(main_tid, worker_tid);
  const std::string json = Tracer::instance().to_chrome_json();
  EXPECT_NE(json.find("\"tid\": " + std::to_string(main_tid)),
            std::string::npos);
  EXPECT_NE(json.find("\"tid\": " + std::to_string(worker_tid)),
            std::string::npos);
}

TEST(ChromeTraceTest, DroppedSpansSurfaceInGaugeAndFlameWarning) {
  reset_tracer();
  Tracer::instance().set_capacity(2);
  { PRC_TRACE_SPAN("one"); }
  { PRC_TRACE_SPAN("two"); }
  { PRC_TRACE_SPAN("three"); }
  EXPECT_EQ(Tracer::instance().dropped(), 1u);

  telemetry::Telemetry::registry().reset();
  publish_telemetry();
  EXPECT_EQ(telemetry::gauge("trace.spans_dropped").value(), 1.0);

  const std::string flame = Tracer::instance().flame_text();
  EXPECT_NE(flame.find("WARNING"), std::string::npos);
  EXPECT_NE(flame.find("evicted"), std::string::npos);
  reset_tracer();
  telemetry::Telemetry::registry().reset();
}

TEST(ChromeTraceTest, NoDropNoWarningAndGaugeIsZero) {
  reset_tracer();
  { PRC_TRACE_SPAN("only"); }
  EXPECT_EQ(Tracer::instance().dropped(), 0u);
  telemetry::Telemetry::registry().reset();
  publish_telemetry();
  EXPECT_EQ(telemetry::gauge("trace.spans_dropped").value(), 0.0);
  EXPECT_EQ(Tracer::instance().flame_text().find("WARNING"),
            std::string::npos);
  telemetry::Telemetry::registry().reset();
}

TEST(ChromeTraceTest, EmptyTracerExportsValidSkeleton) {
  reset_tracer();
  const std::string json = Tracer::instance().to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_EQ(json.find("\"ph\""), std::string::npos);
}

}  // namespace
}  // namespace prc::trace
