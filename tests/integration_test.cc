// End-to-end integration: CityPulse-like data -> partitioned IoT network ->
// broker -> consumers, exercising every layer the way the paper's Fig. 1
// system model composes them.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "data/citypulse.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "dp/private_counting.h"
#include "iot/network.h"
#include "market/broker.h"
#include "market/consumer.h"
#include "query/workload.h"

namespace prc {
namespace {

struct Pipeline {
  explicit Pipeline(std::uint64_t seed = 1,
                    data::PartitionStrategy strategy =
                        data::PartitionStrategy::kRoundRobin) {
    data::CityPulseConfig config;
    config.record_count = 8000;
    config.seed = seed;
    records = data::CityPulseGenerator(config).generate();
    dataset = std::make_unique<data::Dataset>(records);
    const auto& column = dataset->column(data::AirQualityIndex::kOzone);
    Rng rng(seed + 1);
    auto node_data = data::partition_values(column.values(), 8, strategy, rng);
    network = std::make_unique<iot::FlatNetwork>(
        std::move(node_data),
        iot::NetworkConfig{.frame_loss_probability = 0.0,
                           .seed = seed + 2,
                           .faults = {},
                           .max_attempts = 0});
    counter = std::make_unique<dp::PrivateRangeCounter>(*network,
                                                        dp::PrivateCounterConfig{},
                                                        seed + 3);
  }

  std::vector<data::AirQualityRecord> records;
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<iot::FlatNetwork> network;
  std::unique_ptr<dp::PrivateRangeCounter> counter;
};

TEST(IntegrationTest, SamplingEstimatesTrackExactCountsAcrossSuite) {
  Pipeline pipeline;
  const auto& column =
      pipeline.dataset->column(data::AirQualityIndex::kOzone);
  pipeline.network->ensure_sampling_probability(0.3);
  const double n = static_cast<double>(column.size());
  for (const auto& q : query::default_evaluation_suite(column)) {
    const double truth =
        static_cast<double>(column.exact_range_count(q.lower, q.upper));
    const double estimate = pipeline.network->rank_counting_estimate(q);
    // 8 nodes at p = 0.3: sd <= sqrt(8*8)/0.3 ~ 27; give 6 sigma.
    EXPECT_NEAR(estimate, truth, 6.0 * std::sqrt(8.0 * 8.0) / 0.3)
        << q.to_string() << " n=" << n;
  }
}

TEST(IntegrationTest, PrivateAnswersMeetContractOnRealisticData) {
  const query::AccuracySpec spec{0.08, 0.7};
  int within = 0;
  const int trials = 60;
  double truth = 0.0;
  double n = 0.0;
  for (int t = 0; t < trials; ++t) {
    Pipeline pipeline(static_cast<std::uint64_t>(t) * 101 + 7);
    const auto& column =
        pipeline.dataset->column(data::AirQualityIndex::kOzone);
    const query::RangeQuery range{column.quantile(0.25),
                                  column.quantile(0.85)};
    truth = static_cast<double>(
        column.exact_range_count(range.lower, range.upper));
    n = static_cast<double>(column.size());
    const auto answer = pipeline.counter->answer(range, spec);
    if (std::abs(answer.value - truth) <= spec.alpha * n) ++within;
  }
  const double margin = 3.0 * std::sqrt(spec.delta * (1 - spec.delta) /
                                        trials);
  EXPECT_GE(static_cast<double>(within) / trials, spec.delta - margin);
}

TEST(IntegrationTest, ContractHoldsUnderSkewedPartitioning) {
  const query::AccuracySpec spec{0.10, 0.6};
  int within = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Pipeline pipeline(static_cast<std::uint64_t>(t) * 137 + 11,
                      data::PartitionStrategy::kZipfSkewed);
    const auto& column =
        pipeline.dataset->column(data::AirQualityIndex::kOzone);
    const query::RangeQuery range{column.quantile(0.3),
                                  column.quantile(0.9)};
    const double truth = static_cast<double>(
        column.exact_range_count(range.lower, range.upper));
    const auto answer = pipeline.counter->answer(range, spec);
    if (std::abs(answer.value - truth) <=
        spec.alpha * static_cast<double>(column.size())) {
      ++within;
    }
  }
  const double margin =
      3.0 * std::sqrt(spec.delta * (1 - spec.delta) / trials);
  EXPECT_GE(static_cast<double>(within) / trials, spec.delta - margin);
}

TEST(IntegrationTest, LossyNetworkStillMeetsContract) {
  const query::AccuracySpec spec{0.10, 0.7};
  int within = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    data::CityPulseConfig config;
    config.record_count = 6000;
    config.seed = static_cast<std::uint64_t>(t) + 500;
    const data::Dataset dataset(
        data::CityPulseGenerator(config).generate());
    const auto& column = dataset.column(data::AirQualityIndex::kOzone);
    Rng rng(config.seed + 1);
    auto node_data = data::partition_values(
        column.values(), 6, data::PartitionStrategy::kRoundRobin, rng);
    iot::FlatNetwork network(std::move(node_data),
                             iot::NetworkConfig{.frame_loss_probability = 0.3,
                                                .seed = config.seed + 2,
                                                .faults = {},
                                                .max_attempts = 0});
    dp::PrivateRangeCounter counter(network, {}, config.seed + 3);
    const query::RangeQuery range{column.quantile(0.2),
                                  column.quantile(0.8)};
    const double truth = static_cast<double>(
        column.exact_range_count(range.lower, range.upper));
    const auto answer = counter.answer(range, spec);
    if (std::abs(answer.value - truth) <=
        spec.alpha * static_cast<double>(column.size())) {
      ++within;
    }
  }
  const double margin =
      3.0 * std::sqrt(spec.delta * (1 - spec.delta) / trials);
  EXPECT_GE(static_cast<double>(within) / trials, spec.delta - margin);
}

TEST(IntegrationTest, FullMarketRoundTrip) {
  Pipeline pipeline(42);
  market::DataBroker broker(
      *pipeline.counter,
      std::make_unique<pricing::InverseVariancePricing>(
          pricing::VarianceModel(pipeline.dataset->record_count(), 8),
          query::AccuracySpec{0.1, 0.5}, 100.0, 1.0));
  market::HonestConsumer analyst("analyst", broker);
  const auto& column =
      pipeline.dataset->column(data::AirQualityIndex::kOzone);
  const query::RangeQuery range{column.quantile(0.4), column.quantile(0.95)};

  const auto outcome = analyst.acquire(range, {0.08, 0.7});
  EXPECT_GT(outcome.total_cost, 0.0);
  EXPECT_GE(outcome.answer, 0.0);
  EXPECT_EQ(broker.ledger().transaction_count(), 1u);
  // The broker's privacy audit matches the plan the counter produced.
  EXPECT_GT(broker.ledger().consumer_epsilon("analyst"), 0.0);
  // All communication happened through the simulated network and was
  // accounted for.
  EXPECT_GT(pipeline.network->stats().total_bytes(), 0u);
  // Sampling cost is far below shipping the raw data (8 bytes/value).
  EXPECT_LT(pipeline.network->stats().uplink_bytes,
            8u * pipeline.dataset->record_count());
}

TEST(IntegrationTest, CsvRoundTripFeedsIdenticalExperiments) {
  data::CityPulseConfig config;
  config.record_count = 1500;
  const auto records = data::CityPulseGenerator(config).generate();
  const std::string path = ::testing::TempDir() + "/prc_integration.csv";
  data::write_records_csv(records, path);
  const auto loaded = data::read_records_csv(path);
  const data::Dataset original(records);
  const data::Dataset reloaded(loaded);
  const auto& col_a = original.column(data::AirQualityIndex::kOzone);
  const auto& col_b = reloaded.column(data::AirQualityIndex::kOzone);
  const query::RangeQuery range{col_a.quantile(0.2), col_a.quantile(0.8)};
  EXPECT_EQ(col_a.exact_range_count(range.lower, range.upper),
            col_b.exact_range_count(range.lower, range.upper));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prc
