#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "data/citypulse.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "query/range_query.h"
#include "query/workload.h"

namespace prc {
namespace {

using data::PartitionStrategy;

std::vector<double> test_values(std::size_t n) {
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i) * 0.5;
  return values;
}

class PartitionStrategyTest
    : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(PartitionStrategyTest, PreservesMultiset) {
  Rng rng(3);
  const auto values = test_values(997);
  const auto nodes = partition_values(values, 7, GetParam(), rng);
  ASSERT_EQ(nodes.size(), 7u);
  std::vector<double> flattened;
  for (const auto& node : nodes) {
    flattened.insert(flattened.end(), node.begin(), node.end());
  }
  ASSERT_EQ(flattened.size(), values.size());
  std::vector<double> sorted_in = values;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(flattened.begin(), flattened.end());
  EXPECT_EQ(flattened, sorted_in);
}

TEST_P(PartitionStrategyTest, SingleNodeGetsEverything) {
  Rng rng(4);
  const auto values = test_values(50);
  const auto nodes = partition_values(values, 1, GetParam(), rng);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].size(), 50u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PartitionStrategyTest,
    ::testing::Values(PartitionStrategy::kRoundRobin,
                      PartitionStrategy::kContiguous,
                      PartitionStrategy::kZipfSkewed,
                      PartitionStrategy::kUniformRandom));

TEST(PartitionTest, RoundRobinBalances) {
  Rng rng(5);
  const auto nodes = partition_values(test_values(100), 8,
                                      PartitionStrategy::kRoundRobin, rng);
  for (const auto& node : nodes) {
    EXPECT_GE(node.size(), 12u);
    EXPECT_LE(node.size(), 13u);
  }
}

TEST(PartitionTest, ContiguousKeepsOrder) {
  Rng rng(6);
  const auto nodes = partition_values(test_values(10), 3,
                                      PartitionStrategy::kContiguous, rng);
  EXPECT_EQ(nodes[0], (std::vector<double>{0.0, 0.5, 1.0, 1.5}));
  EXPECT_EQ(nodes[1], (std::vector<double>{2.0, 2.5, 3.0}));
  EXPECT_EQ(nodes[2], (std::vector<double>{3.5, 4.0, 4.5}));
}

TEST(PartitionTest, ZipfIsSkewed) {
  Rng rng(7);
  const auto nodes = partition_values(test_values(20000), 10,
                                      PartitionStrategy::kZipfSkewed, rng, 1.3);
  EXPECT_GT(nodes[0].size(), nodes[9].size() * 3);
}

TEST(PartitionTest, RejectsZeroNodes) {
  Rng rng(8);
  EXPECT_THROW(
      partition_values({1.0}, 0, PartitionStrategy::kRoundRobin, rng),
      std::invalid_argument);
}

TEST(RangeQueryTest, ValidationRules) {
  query::RangeQuery ok{1.0, 2.0};
  EXPECT_NO_THROW(ok.validate());
  query::RangeQuery point{2.0, 2.0};
  EXPECT_NO_THROW(point.validate());
  query::RangeQuery inverted{3.0, 2.0};
  EXPECT_THROW(inverted.validate(), std::invalid_argument);
  query::RangeQuery nan{std::nan(""), 2.0};
  EXPECT_THROW(nan.validate(), std::invalid_argument);
}

TEST(RangeQueryTest, ContainsIsClosed) {
  const query::RangeQuery q{1.0, 2.0};
  EXPECT_TRUE(q.contains(1.0));
  EXPECT_TRUE(q.contains(2.0));
  EXPECT_TRUE(q.contains(1.5));
  EXPECT_FALSE(q.contains(0.999));
  EXPECT_FALSE(q.contains(2.001));
}

TEST(AccuracySpecTest, ValidationRules) {
  EXPECT_NO_THROW((query::AccuracySpec{0.1, 0.9}.validate()));
  EXPECT_NO_THROW((query::AccuracySpec{1.0, 0.05}.validate()));
  EXPECT_THROW((query::AccuracySpec{0.0, 0.5}.validate()),
               std::invalid_argument);
  EXPECT_THROW((query::AccuracySpec{0.5, 1.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW((query::AccuracySpec{-0.1, 0.5}.validate()),
               std::invalid_argument);
  // delta = 0 would make the contract vacuous; rejected.
  EXPECT_THROW((query::AccuracySpec{0.5, 0.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW((query::AccuracySpec{0.1, -0.1}.validate()),
               std::invalid_argument);
}

TEST(AccuracySpecTest, ImplicationOrder) {
  const query::AccuracySpec loose{0.2, 0.5};
  const query::AccuracySpec strict{0.1, 0.9};
  EXPECT_TRUE(loose.is_implied_by(strict));
  EXPECT_FALSE(strict.is_implied_by(loose));
  EXPECT_TRUE(loose.is_implied_by(loose));
}

TEST(ExactRangeCountTest, ScanMatches) {
  const std::vector<double> values = {1.0, 2.0, 2.0, 3.0, 5.0};
  EXPECT_EQ(query::exact_range_count(values, {2.0, 3.0}), 3u);
  EXPECT_EQ(query::exact_range_count(values, {0.0, 10.0}), 5u);
  EXPECT_EQ(query::exact_range_count(values, {4.0, 4.5}), 0u);
}

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() {
    data::CityPulseConfig config;
    config.record_count = 2000;
    dataset_ = std::make_unique<data::Dataset>(
        data::CityPulseGenerator(config).generate());
  }
  std::unique_ptr<data::Dataset> dataset_;
};

TEST_F(WorkloadTest, QuantileAnchoredRangesHaveExpectedSelectivity) {
  const auto& col = dataset_->column(data::AirQualityIndex::kOzone);
  const auto queries = query::quantile_anchored_ranges(col, {0.2, 0.8});
  ASSERT_EQ(queries.size(), 1u);
  const double selectivity =
      static_cast<double>(
          col.exact_range_count(queries[0].lower, queries[0].upper)) /
      static_cast<double>(col.size());
  EXPECT_NEAR(selectivity, 0.6, 0.02);
}

TEST_F(WorkloadTest, UniformRandomRangesAreValid) {
  const auto& col = dataset_->column(data::AirQualityIndex::kOzone);
  Rng rng(9);
  const auto queries = query::uniform_random_ranges(col, 50, rng);
  ASSERT_EQ(queries.size(), 50u);
  for (const auto& q : queries) {
    EXPECT_NO_THROW(q.validate());
    EXPECT_GE(q.lower, col.min());
    EXPECT_LE(q.upper, col.max());
  }
}

TEST_F(WorkloadTest, SlidingWindowsCoverDomain) {
  const auto& col = dataset_->column(data::AirQualityIndex::kOzone);
  const auto queries = query::sliding_windows(col, 0.25, 4);
  ASSERT_EQ(queries.size(), 4u);
  EXPECT_NEAR(queries.front().lower, col.min(), 1e-9);
  EXPECT_NEAR(queries.back().upper, col.max(), 1e-9);
  const double expected_width = (col.max() - col.min()) * 0.25;
  for (const auto& q : queries) {
    EXPECT_NEAR(q.width(), expected_width, 1e-9);
  }
  EXPECT_THROW(query::sliding_windows(col, 0.0, 4), std::invalid_argument);
  EXPECT_TRUE(query::sliding_windows(col, 0.5, 0).empty());
}

TEST_F(WorkloadTest, DefaultSuiteSpansSelectivities) {
  const auto& col = dataset_->column(data::AirQualityIndex::kOzone);
  const auto queries = query::default_evaluation_suite(col);
  EXPECT_GT(queries.size(), 20u);
  double min_sel = 1.0, max_sel = 0.0;
  for (const auto& q : queries) {
    const double sel =
        static_cast<double>(col.exact_range_count(q.lower, q.upper)) /
        static_cast<double>(col.size());
    min_sel = std::min(min_sel, sel);
    max_sel = std::max(max_sel, sel);
  }
  EXPECT_LT(min_sel, 0.15);
  EXPECT_GT(max_sel, 0.85);
}

}  // namespace
}  // namespace prc
