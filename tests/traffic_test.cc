#include "data/traffic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/statistics.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "estimator/accuracy.h"
#include "estimator/rank_counting.h"
#include "sampling/local_sampler.h"

namespace prc::data {
namespace {

TEST(TrafficTest, ShapeMatchesConfig) {
  TrafficConfig config;
  config.record_count = 1000;
  const auto records = TrafficGenerator(config).generate();
  ASSERT_EQ(records.size(), 1000u);
  EXPECT_EQ(records[0].timestamp, config.start_timestamp);
  EXPECT_EQ(records[1].timestamp - records[0].timestamp, 300);
}

TEST(TrafficTest, DeterministicPerSeed) {
  TrafficConfig config;
  config.record_count = 500;
  const auto a = TrafficGenerator(config).generate_counts();
  const auto b = TrafficGenerator(config).generate_counts();
  EXPECT_EQ(a, b);
  config.seed += 1;
  const auto c = TrafficGenerator(config).generate_counts();
  EXPECT_NE(a, c);
}

TEST(TrafficTest, CountsAreNonNegativeIntegers) {
  TrafficConfig config;
  config.record_count = 3000;
  for (double v : TrafficGenerator(config).generate_counts()) {
    ASSERT_GE(v, 0.0);
    ASSERT_EQ(v, std::round(v));
  }
}

TEST(TrafficTest, RushHourBeatsNight) {
  TrafficConfig config;
  config.record_count = 288 * 14;  // two weeks
  const auto records = TrafficGenerator(config).generate();
  RunningStats rush, night;
  for (const auto& record : records) {
    const std::int64_t seconds_of_day = record.timestamp % 86400;
    const double hour = static_cast<double>(seconds_of_day) / 3600.0;
    if (hour >= 8.0 && hour < 9.0) rush.add(record.vehicle_count);
    if (hour >= 2.0 && hour < 4.0) night.add(record.vehicle_count);
  }
  EXPECT_GT(rush.mean(), night.mean() * 5.0);
}

TEST(TrafficTest, WeekendsAreQuieterAtRushHour) {
  TrafficConfig config;
  config.record_count = 288 * 28;  // four weeks
  const auto records = TrafficGenerator(config).generate();
  RunningStats weekday_rush, weekend_rush;
  for (const auto& record : records) {
    const int dow = static_cast<int>((record.timestamp / 86400 + 4) % 7);
    const double hour =
        static_cast<double>(record.timestamp % 86400) / 3600.0;
    if (hour < 8.0 || hour >= 9.0) continue;
    if (dow == 0 || dow == 6) weekend_rush.add(record.vehicle_count);
    else weekday_rush.add(record.vehicle_count);
  }
  EXPECT_GT(weekday_rush.mean(), weekend_rush.mean() * 1.5);
}

TEST(TrafficTest, DistributionIsRightSkewed) {
  TrafficConfig config;
  config.record_count = 10000;
  const auto counts = TrafficGenerator(config).generate_counts();
  const Column column("traffic", counts);
  // Mean well above median: the hallmark of the bursty count distribution.
  RunningStats stats;
  for (double v : counts) stats.add(v);
  EXPECT_GT(stats.mean(), column.quantile(0.5) * 1.1);
}

TEST(TrafficTest, RankCountingWorksOnTrafficData) {
  // The framework is dataset-agnostic: the (alpha, delta) guarantee holds
  // on the discrete, zero-inflated traffic counts too.
  TrafficConfig config;
  config.record_count = 8000;
  const auto counts = TrafficGenerator(config).generate_counts();
  const std::size_t k = 4;
  Rng rng(5);
  const auto nodes =
      partition_values(counts, k, PartitionStrategy::kRoundRobin, rng);

  const query::AccuracySpec spec{0.08, 0.8};
  const double p = std::min(1.0, estimator::required_sampling_probability(
                                     spec, k, counts.size()));
  const query::RangeQuery range{10.5, 120.5};
  double truth = 0.0;
  for (double v : counts) {
    if (range.contains(v)) truth += 1.0;
  }
  int within = 0;
  const int trials = 1500;
  for (int t = 0; t < trials; ++t) {
    double estimate = 0.0;
    for (const auto& node : nodes) {
      sampling::LocalSampler sampler(node);
      sampler.raise_probability(p, rng);
      estimate += estimator::rank_counting_node_estimate(
          sampler.current_sample(), node.size(), p, range);
    }
    if (std::abs(estimate - truth) <=
        spec.alpha * static_cast<double>(counts.size())) {
      ++within;
    }
  }
  const double margin =
      3.0 * std::sqrt(spec.delta * (1 - spec.delta) / trials);
  EXPECT_GE(static_cast<double>(within) / trials, spec.delta - margin);
}

}  // namespace
}  // namespace prc::data
